"""Embedding lookup and its scatter-add gradient."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register


class EmbeddingOp(Op):
    """y[...,:] = weight[indices[...], :]."""

    name = "embedding"
    recompute_cheap = True  # a gather; trivially re-executable
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        weight, indices = node.inputs
        if len(weight.shape) != 2:
            raise ShapeError(f"embedding weight must be rank-2, got {weight.shape}")
        if not np.issubdtype(indices.dtype, np.integer):
            raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
        return [TensorSpec(indices.shape + (weight.shape[1],), weight.dtype)]

    def compute(self, node, inputs):
        weight, indices = inputs
        return [weight[indices]]

    def compute_into(self, node, inputs, outs):
        weight, indices = inputs
        np.take(weight, indices, axis=0, out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        weight, indices = node.inputs
        dw = Node(
            _EMBEDDING_GRAD, [indices, dy], {"vocab_size": weight.shape[0]}
        ).out()
        return [dw, None]


class EmbeddingGradOp(Op):
    """dW = scatter_add(zeros([V, H]), indices, dy)."""

    name = "embedding_grad"
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        _indices, dy = node.inputs
        return [TensorSpec((node.attrs["vocab_size"], dy.shape[-1]), dy.dtype)]

    def compute(self, node, inputs):
        indices, dy = inputs
        vocab, hidden = node.out_specs[0].shape
        dw = np.zeros((vocab, hidden), dtype=dy.dtype)
        np.add.at(dw, indices.reshape(-1), dy.reshape(-1, hidden))
        return [dw]

    def compute_into(self, node, inputs, outs):
        indices, dy = inputs
        hidden = node.out_specs[0].shape[1]
        dw = outs[0]
        dw.fill(0)
        np.add.at(dw, indices.reshape(-1), dy.reshape(-1, hidden))


_EMBEDDING = register(EmbeddingOp())
_EMBEDDING_GRAD = register(EmbeddingGradOp())


def embedding(weight: Tensor, indices: Tensor) -> Tensor:
    return Node(_EMBEDDING, [weight, indices]).out()
