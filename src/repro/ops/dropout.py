"""Inverted dropout with a counter-based deterministic mask.

The mask is regenerated from ``(seed, step)`` rather than stashed state, so
a mirrored (recomputed) dropout node produces a bit-identical mask — the
property Echo needs to guarantee recomputation never changes training
numerics. The executor bumps ``step`` once per iteration via
:func:`set_global_step`.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.graph import Node, Op, Tensor, TensorSpec, register

_GLOBAL_STEP = 0


def stable_seed(*parts) -> int:
    """Process-stable dropout seed from structural identifiers.

    Python's ``hash()`` is salted per process (``PYTHONHASHSEED``), so
    seeding a mask from ``hash((prefix, layer))`` makes masks — and with
    them training curves and cross-process parity tests — irreproducible.
    This digests the parts' repr with ``zlib.crc32``, which is a fixed
    function of its input everywhere.
    """
    return zlib.crc32(repr(parts).encode("utf-8")) & 0xFFFF


def set_global_step(step: int) -> None:
    """Advance the dropout RNG stream; called once per training iteration."""
    global _GLOBAL_STEP
    _GLOBAL_STEP = int(step)


def _mask(node: Node, shape: tuple[int, ...]) -> np.ndarray:
    rng = np.random.default_rng((node.attrs["seed"], _GLOBAL_STEP))
    keep = 1.0 - node.attrs["p"]
    return (rng.random(shape) < keep).astype(np.float32) / np.float32(keep)


class DropoutOp(Op):
    """Outputs (y, mask); mask is stashed for backward unless recomputed."""

    name = "dropout"
    recompute_cheap = True

    def num_outputs(self, node: Node) -> int:
        return 2

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        return [TensorSpec(x.shape, x.dtype), TensorSpec(x.shape, x.dtype)]

    def compute(self, node, inputs):
        (x,) = inputs
        if node.attrs["p"] <= 0.0:
            mask = np.ones_like(x)
        else:
            mask = _mask(node, x.shape)
        return [np.asarray(x * mask, dtype=x.dtype), mask]

    def gradient(self, node, out_grads):
        from repro.ops.elementwise import mul

        dy = out_grads[0]
        if dy is None:
            return [None]
        return [mul(dy, node.out(1))]


_DROPOUT = register(DropoutOp())


def dropout(x: Tensor, p: float, seed: int = 0) -> Tensor:
    """Apply inverted dropout with drop probability ``p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    return Node(_DROPOUT, [x], {"p": float(p), "seed": int(seed)}).out(0)
