"""Layer normalization over the last axis, with learnable gain and bias.

Layer norm is one of the three components of the attention scoring function
(broadcast add + layer norm + tanh) that the paper identifies as the
O-shape region: its [B x T x H] outputs get stashed per decoder step in the
legacy backward pass, and it is cheap enough to recompute that Echo mirrors
it into the backward pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register

_EPS = 1e-5


class LayerNormOp(Op):
    """y = gamma * (x - mean) / sqrt(var + eps) + beta over the last axis.

    Outputs: (y, mean, rstd). mean/rstd are tiny ([... x 1]) but needed by
    the backward kernel — faithfully modeling cuDNN/MXNet which stash them.
    """

    name = "layer_norm"
    recompute_cheap = True

    def num_outputs(self, node: Node) -> int:
        return 3

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x, gamma, beta = node.inputs
        h = x.shape[-1]
        if gamma.shape != (h,) or beta.shape != (h,):
            raise ShapeError(
                f"layer_norm gain/bias must be ({h},), got {gamma.shape}, "
                f"{beta.shape}"
            )
        stat_shape = x.shape[:-1] + (1,)
        return [
            TensorSpec(x.shape, x.dtype),
            TensorSpec(stat_shape, x.dtype),
            TensorSpec(stat_shape, x.dtype),
        ]

    def compute(self, node, inputs):
        x, gamma, beta = inputs
        mean = np.mean(x, axis=-1, keepdims=True)
        var = np.var(x, axis=-1, keepdims=True)
        rstd = 1.0 / np.sqrt(var + _EPS)
        y = gamma * (x - mean) * rstd + beta
        dtype = node.out_specs[0].dtype
        return [
            np.asarray(y, dtype=dtype),
            np.asarray(mean, dtype=dtype),
            np.asarray(rstd, dtype=dtype),
        ]

    def gradient(self, node, out_grads):
        dy = out_grads[0]
        if dy is None:
            return [None, None, None]
        x, gamma, _beta = node.inputs
        grad_node = Node(
            _LAYER_NORM_GRAD,
            [x, gamma, node.out(1), node.out(2), dy],
        )
        return [grad_node.out(0), grad_node.out(1), grad_node.out(2)]


class LayerNormGradOp(Op):
    """Fused backward producing (dx, dgamma, dbeta)."""

    name = "layer_norm_grad"
    recompute_cheap = True

    def num_outputs(self, node: Node) -> int:
        return 3

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x, gamma = node.inputs[0], node.inputs[1]
        return [
            TensorSpec(x.shape, x.dtype),
            TensorSpec(gamma.shape, x.dtype),
            TensorSpec(gamma.shape, x.dtype),
        ]

    def compute(self, node, inputs):
        x, gamma, mean, rstd, dy = inputs
        xhat = (x - mean) * rstd
        dxhat = dy * gamma
        # Standard layer-norm backward identities.
        dx = rstd * (
            dxhat
            - np.mean(dxhat, axis=-1, keepdims=True)
            - xhat * np.mean(dxhat * xhat, axis=-1, keepdims=True)
        )
        reduce_axes = tuple(range(x.ndim - 1))
        dgamma = np.sum(dy * xhat, axis=reduce_axes)
        dbeta = np.sum(dy, axis=reduce_axes)
        dtype = x.dtype
        return [
            np.asarray(dx, dtype=dtype),
            np.asarray(dgamma, dtype=dtype),
            np.asarray(dbeta, dtype=dtype),
        ]


_LAYER_NORM = register(LayerNormOp())
_LAYER_NORM_GRAD = register(LayerNormGradOp())


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor) -> Tensor:
    """Normalized output only; stats outputs are wired to backward."""
    return Node(_LAYER_NORM, [x, gamma, beta]).out(0)
