"""Operator library (DESIGN.md S2): numpy kernels, gradients, cost hooks.

Importing this package also installs arithmetic operator overloads on
:class:`repro.graph.Tensor`.
"""

from repro.ops.activation import relu, sigmoid, tanh
from repro.ops.conv import conv2d
from repro.ops.ctc import ctc_loss
from repro.ops.dropout import dropout, set_global_step, stable_seed
from repro.ops.elementwise import (
    add,
    add_scalar,
    div,
    exp,
    log,
    mul,
    mul_scalar,
    neg,
    pow_scalar,
    rsub_scalar,
    sqrt,
    sub,
)
from repro.ops.embedding import embedding
from repro.ops.fused_rnn import lstm_gates
from repro.ops.layernorm import layer_norm
from repro.ops.loss import softmax_cross_entropy
from repro.ops.matmul import batch_dot, fully_connected, matmul
from repro.ops.reduce import reduce_max, reduce_mean, reduce_sum
from repro.ops.sequence import sequence_reverse
from repro.ops.shape_ops import (
    broadcast_to,
    concat,
    expand_dims,
    reshape,
    slice_axis,
    split,
    transpose,
)
from repro.ops.softmax import softmax
from repro.ops.source import constant, placeholder, variable, zeros

from repro.ops import overloads as _overloads

_overloads.install()

__all__ = [
    "add", "add_scalar", "sub", "mul", "mul_scalar", "div", "neg", "exp",
    "log", "sqrt", "pow_scalar", "rsub_scalar",
    "tanh", "sigmoid", "relu",
    "matmul", "batch_dot", "fully_connected",
    "reduce_sum", "reduce_mean", "reduce_max",
    "reshape", "transpose", "slice_axis", "concat", "split",
    "broadcast_to", "expand_dims",
    "softmax", "layer_norm", "embedding", "sequence_reverse", "dropout",
    "stable_seed",
    "set_global_step", "lstm_gates", "softmax_cross_entropy", "conv2d", "ctc_loss",
    "placeholder", "variable", "constant", "zeros",
]
