"""Source operators: placeholders, trainable variables, constants."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, OpError, Tensor, TensorSpec, register


class PlaceholderOp(Op):
    """Graph input fed by the user each iteration (data / labels)."""

    name = "placeholder"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        return [TensorSpec(node.attrs["shape"], node.attrs["dtype"])]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        raise OpError(f"placeholder {node.name!r} was not fed a value")


class VariableOp(Op):
    """Trainable parameter; its value lives in the executor's param store."""

    name = "variable"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        return [TensorSpec(node.attrs["shape"], node.attrs["dtype"])]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        raise OpError(f"variable {node.name!r} was not bound to a value")


class ConstantOp(Op):
    """Compile-time constant embedded in the graph."""

    name = "constant"
    recompute_cheap = True
    #: returns the graph-owned attrs["value"] array, not a fresh buffer
    may_alias = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        value: np.ndarray = node.attrs["value"]
        return [TensorSpec(value.shape, value.dtype)]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        return [node.attrs["value"]]

    def gradient(self, node, out_grads):
        return []


class ZerosOp(Op):
    """Materializes a zero tensor (used for missing branch gradients)."""

    name = "zeros"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        return [TensorSpec(node.attrs["shape"], node.attrs["dtype"])]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        spec = node.out_specs[0]
        return [np.zeros(spec.shape, dtype=spec.dtype)]

    def compute_into(self, node, inputs, outs):
        outs[0].fill(0)

    def gradient(self, node, out_grads):
        return []


_PLACEHOLDER = register(PlaceholderOp())
_VARIABLE = register(VariableOp())
_CONSTANT = register(ConstantOp())
_ZEROS = register(ZerosOp())


def placeholder(
    shape: Sequence[int], dtype: np.dtype | type = np.float32, name: str | None = None
) -> Tensor:
    """Declare a per-iteration graph input of the given static shape."""
    attrs = {"shape": tuple(shape), "dtype": np.dtype(dtype)}
    return Node(_PLACEHOLDER, [], attrs, name=name).out()


def variable(
    shape: Sequence[int], dtype: np.dtype | type = np.float32, name: str | None = None
) -> Tensor:
    """Declare a trainable parameter of the given static shape."""
    attrs = {"shape": tuple(shape), "dtype": np.dtype(dtype)}
    return Node(_VARIABLE, [], attrs, name=name).out()


def constant(value: np.ndarray, name: str | None = None) -> Tensor:
    """Embed an immutable array into the graph."""
    arr = np.asarray(value)
    return Node(_CONSTANT, [], {"value": arr}, name=name).out()


def zeros(
    shape: Sequence[int], dtype: np.dtype | type = np.float32, name: str | None = None
) -> Tensor:
    """A zero tensor node (cheap to recompute, never worth stashing)."""
    attrs = {"shape": tuple(shape), "dtype": np.dtype(dtype)}
    return Node(_ZEROS, [], attrs, name=name).out()
