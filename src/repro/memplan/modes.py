"""Memplan mode resolution: a leaf module with no intra-package imports.

The runtime (``compiled``, ``scheduler``, ``plancache``) imports mode
resolution from here rather than from the package ``__init__`` so that
importing :mod:`repro.memplan` and :mod:`repro.runtime` in either order
never re-enters a partially-initialized package.
"""

from __future__ import annotations

import os

#: environment variable selecting the buffer-planning mode
MEMPLAN_ENV = "REPRO_MEMPLAN"

_MODES = ("color", "greedy")


def memplan_mode(explicit: str | None = None) -> str:
    """Resolve the buffer-planning mode: explicit arg, else environment.

    Raises ``ValueError`` on an unknown mode so a typo in
    ``REPRO_MEMPLAN`` fails loudly instead of silently changing the
    memory planner.
    """
    mode = explicit
    if mode is None:
        mode = os.environ.get(MEMPLAN_ENV, "").strip().lower() or "color"
    if mode not in _MODES:
        raise ValueError(
            f"unknown memplan mode {mode!r}: expected one of {_MODES}"
        )
    return mode


def memory_aware_default() -> bool:
    """Whether the scheduler's footprint-aware tie-break is on by default."""
    return memplan_mode() == "color"
