"""Copy elision and in-place rewriting over lowered instruction streams.

Both passes mutate the compiler's working records — the instruction
descriptors and the slot alias-root table — before buffer assignment, so
the coloring pass sees the merged storage groups and the baked closures
inherit the rewrites for free.

**Copy elision** turns materializing shape ops whose result is exactly a
view of their input — ``slice_axis``, leading-axis ``split``, single-input
``concat``, same-shape ``broadcast_to`` — into ``alias`` instructions: the
step binds a numpy view of the input register instead of running a copy
kernel, and the output slot joins the input's alias group. The per-step
LSTM gate slices (four ``slice_axis`` per cell step) are the signature
win: the paper's Figure 7a launch-bound story prices exactly these copies.

**In-place rewriting** lets a last-use elementwise/accumulation
instruction write ``out=`` into a dying input's storage: when the input's
whole alias group is dead after this instruction, the op declares the
operand position in-place-capable, and shape/dtype match exactly, the
output slot is merged into the input's group and the closure's static
buffer *is* the input's buffer. Kernels at ``inplace_operands`` positions
tolerate ``out`` aliasing that operand by contract (fusion already streams
one accumulator through them), so values are bitwise-unchanged.

Safety conditions are re-derived independently by
:mod:`repro.analysis.packing` (MP401/MP403) from the record each pass
leaves behind.
"""

from __future__ import annotations

from typing import Any

from repro.graph.shapes import normalize_axis

#: descriptor kinds whose single output may take over a dying input's storage
_INPLACE_KINDS = ("out", "fused")


def describe_index(index: Any) -> tuple[Any, ...]:
    """Serialize one alias-view index into a comparable, hashable form.

    The equivalence certifier compares the index object baked into an
    ``alias`` instruction against the pass's witness and against a fresh
    re-derivation from the node's attrs; index objects (slices, tuples of
    slices) are unhashable and compare by identity-insensitive structure,
    so both sides serialize through this one function.
    """
    if index is None:
        return ("rebind",)
    if isinstance(index, slice):
        return ("slice", index.start, index.stop, index.step)
    if isinstance(index, tuple):
        return ("tuple", *(describe_index(i) for i in index))
    if isinstance(index, int):
        return ("int", index)
    return ("opaque", repr(index))


def _alias_indices(desc: dict[str, Any]) -> list[Any] | None:
    """Per-output view index for an elidable copy, or None.

    A returned entry is either an index object (``regs[out] =
    regs[in][index]``) or None for a pure rebind (``regs[out] =
    regs[in]``). Only rewrites whose view is *exactly* the op's value are
    eligible; everything else keeps its copy kernel.
    """
    node = desc["node"]
    op_name = node.op.name
    if len(node.inputs) == 0:
        return None
    in_spec = node.inputs[0]
    if op_name == "slice_axis":
        axis = normalize_axis(node.attrs["axis"], len(in_spec.shape))
        begin, end = node.attrs["begin"], node.attrs["end"]
        if axis == 0 and begin == 0 and end == in_spec.shape[0]:
            return [None]  # full-range slice: identity
        index = (slice(None),) * axis + (slice(begin, end),)
        return [index]
    if op_name == "split":
        axis = normalize_axis(node.attrs["axis"], len(in_spec.shape))
        if axis != 0:
            # Non-leading splits produce strided pieces too, but axis-0 is
            # the only case the op itself prices as free (launch_count 0);
            # match that contract.
            return None
        sections = node.attrs["sections"]
        size = in_spec.shape[0] // sections
        return [slice(k * size, (k + 1) * size) for k in range(sections)]
    if op_name == "concat" and len(node.inputs) == 1:
        return [None]
    if op_name == "broadcast_to":
        if tuple(node.attrs["shape"]) == in_spec.shape:
            return [None]
        return None
    return None


def elide_copies(
    descs: list[dict[str, Any]],
    root: list[int],
    output_slots: frozenset[int] | set[int],
) -> list[dict[str, Any]]:
    """Rewrite view-equivalent copies into ``alias`` instructions.

    Mutates ``descs`` (kind + ``alias_index``) and ``root`` (output slots
    join the input's alias group). Outputs that escape the plan keep
    their copies — callers own escaping arrays, which must never alias
    plan storage. Returns one record per rewritten instruction for the
    memplan record (consumed by the MP401 analyzer and plan stats).
    """
    records: list[dict[str, Any]] = []
    for idx, desc in enumerate(descs):
        if desc["kind"] not in ("out", "generic"):
            continue
        if any(s in output_slots for s in desc["out_slots"]):
            continue
        indices = _alias_indices(desc)
        if indices is None:
            continue
        src = desc["in_slots"][0]
        desc["kind"] = "alias"
        desc["alias_index"] = indices
        target = root[src]
        remap = {o: target for o in desc["out_slots"]}
        for i, r in enumerate(root):
            root[i] = remap.get(r, r)
        records.append(
            {
                "instr": idx,
                "op": desc["node"].op.name,
                "src_slot": src,
                "out_slots": list(desc["out_slots"]),
                # The witness payload: the exact view each output binds,
                # serialized so the equivalence certifier can compare it
                # against an independent re-derivation (EQ605).
                "indices": [describe_index(ix) for ix in indices],
            }
        )
    return records


def _inplace_positions(desc: dict[str, Any]) -> list[tuple[int, int]]:
    """(slot, occurrence count in the instruction) per in-place-capable read.

    For a plain ``out`` instruction these are the op's declared
    ``inplace_operands`` positions. For a fused chain only the *first*
    member may overwrite an external operand — later members read their
    external inputs after the accumulator (the would-be storage) has
    already been written.
    """
    out: list[tuple[int, int]] = []
    if desc["kind"] == "out":
        in_slots = desc["in_slots"]
        for pos in desc["node"].op.inplace_operands:
            if pos < len(in_slots):
                slot = in_slots[pos]
                out.append((slot, sum(1 for s in in_slots if s == slot)))
    elif desc["kind"] == "fused":
        chain = desc["chain"]
        occurrences: dict[int, int] = {}
        for _op, _member, pattern in chain:
            for s in pattern:
                if s >= 0:
                    occurrences[s] = occurrences.get(s, 0) + 1
        first_op, _first_member, first_pattern = chain[0]
        for pos in first_op.inplace_operands:
            if pos < len(first_pattern) and first_pattern[pos] >= 0:
                slot = first_pattern[pos]
                out.append((slot, occurrences[slot]))
    return out


def rewrite_inplace(
    descs: list[dict[str, Any]],
    root: list[int],
    arena_produced: list[bool],
    never_freed: frozenset[int] | set[int],
    storage_specs: dict[int, tuple[tuple[int, ...], Any, int]],
) -> list[dict[str, Any]]:
    """Merge last-use in-place-capable writes into their input's storage.

    Mutates ``root`` so the rewritten instruction's output slot shares the
    dying input group's (future static) buffer; the closure baker then
    binds that buffer as the ``out=`` target. All safety conditions are
    purely structural, so this runs before buffers exist:

    * the target's *entire* alias group is dead after this instruction
      (no member — including views — is read later);
    * the group's storage is arena-produced and escapes through no output,
      source, or constant (it will be static);
    * the group's storage spec exactly matches the instruction's output
      spec (the buffer is reused as-is, no reshape/cast);
    * the target is read exactly once by this instruction, at an
      in-place-capable operand position, and no other operand aliases the
      same storage.

    Returns one record per rewrite for the memplan record (MP403).
    """
    nslots = len(root)
    last_use: dict[int, int] = {}
    for idx, desc in enumerate(descs):
        for s in desc["in_slots"]:
            last_use[s] = idx
    for idx, desc in enumerate(descs):
        for s in desc["out_slots"]:
            last_use.setdefault(s, idx)

    parent = list(root)

    def find(s: int) -> int:
        while parent[s] != s:
            parent[s] = parent[parent[s]]
            s = parent[s]
        return s

    members: dict[int, list[int]] = {}
    for s in range(nslots):
        members.setdefault(find(s), []).append(s)
    pinned = {r for r, grp in members.items()
              if any(m in never_freed for m in grp)}
    group_last_use: dict[int, int] = {
        r: max(last_use.get(m, 0) for m in grp)
        for r, grp in members.items()
    }

    records: list[dict[str, Any]] = []
    for idx, desc in enumerate(descs):
        if desc["kind"] not in _INPLACE_KINDS or len(desc["out_slots"]) != 1:
            continue
        o = desc["out_slots"][0]
        if find(o) != o or o in pinned:
            continue  # batched member / already aliased / escaping group
        node = desc["node"]
        spec = node.out_specs[0]
        if spec.nbytes <= 0:
            continue
        out_spec = (spec.shape, spec.dtype, spec.nbytes)
        roots_read = [find(s) for s in desc["in_slots"]]
        for slot, occurrences in _inplace_positions(desc):
            if occurrences != 1:
                continue
            r = find(slot)
            if r in pinned or not arena_produced[r]:
                continue
            if storage_specs.get(r) != out_spec:
                continue
            if group_last_use[r] > idx:
                continue  # some group member is still live
            if roots_read.count(r) > 1:
                continue  # another operand aliases the same storage
            group = members[r]
            parent[o] = r
            members[r] = group + members.pop(o, [o])
            group_last_use[r] = max(group_last_use[r],
                                    group_last_use.pop(o, last_use.get(o, idx)))
            records.append(
                {
                    "instr": idx,
                    "out": o,
                    "target": slot,
                    "root": r,
                    "members": sorted(group),
                }
            )
            break

    if records:
        for i in range(nslots):
            root[i] = find(root[i])
    return records


#: public names for the equivalence certifier's independent re-derivations
#: (deliberately the *same* functions the pass uses: the certifier checks
#: the lowered stream against them, not against the pass's records alone)
alias_view_indices = _alias_indices
inplace_positions = _inplace_positions
