"""Packed-footprint estimate over a node-level memory plan.

Echo's accept/reject loop historically compared node-level peak live
bytes — the sum of live tensor sizes at the worst step. With coloring in
play the figure that actually materializes on the host is the *packed*
extent: exact live intervals first-fit-decreasing packed, plus the
workspace high-water mark. Fragmentation can make a candidate that wins
on the waterline lose on the packed extent (and vice versa), so the pass
scores candidates on the same metric the compiled plan will report.
"""

from __future__ import annotations

from repro.memplan.coloring import Request, pack_intervals
from repro.runtime.memory import MemoryPlan


def packed_peak_bytes(plan: MemoryPlan) -> int:
    """FFD-packed peak bytes of a node-level memory plan.

    Packs every tensor lifetime's ``[alloc_step, free_step]`` interval
    and adds the workspace pool high-water mark, mirroring what interval
    coloring achieves for the lowered stream.
    """
    requests: list[Request] = []
    for key, life in plan.lifetimes.items():
        if life.nbytes <= 0:
            continue
        requests.append((key, life.alloc_step, life.free_step, life.nbytes))
    packed = pack_intervals(requests)
    return packed.extent_bytes + plan.workspace_pool_hwm
