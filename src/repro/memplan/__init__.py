"""Graph-level memory optimization for compiled plans.

The memory-optimization stage between scheduling and lowering: copy
elision and in-place rewriting over the instruction stream
(:mod:`repro.memplan.elision`), interference-interval buffer coloring
into one contiguous arena extent (:mod:`repro.memplan.coloring`), the
planner that orchestrates both and hands :class:`CompiledPlan` its
buffer assignment (:mod:`repro.memplan.planner`), and the packed-peak
estimator Echo's accept/reject loop scores candidates with
(:mod:`repro.memplan.estimate`).

Mode selection is ambient: ``REPRO_MEMPLAN=color`` (the default) runs
the full optimizer, ``REPRO_MEMPLAN=greedy`` falls back to the PR-2
size-class free-list replay — byte-for-byte the historical behavior and
the bitwise reference the property tests compare against.
"""

from __future__ import annotations

from repro.memplan.modes import MEMPLAN_ENV, memory_aware_default, memplan_mode
from repro.memplan.coloring import (
    PackResult,
    atomic_tokens,
    pack_intervals,
    waterline,
)
from repro.memplan.estimate import packed_peak_bytes
from repro.memplan.planner import BufferAssignment, MemplanRecord, plan_buffers


__all__ = [
    "BufferAssignment",
    "MEMPLAN_ENV",
    "MemplanRecord",
    "PackResult",
    "atomic_tokens",
    "memory_aware_default",
    "memplan_mode",
    "pack_intervals",
    "packed_peak_bytes",
    "plan_buffers",
    "waterline",
]
