"""Interference-interval buffer coloring: offsets into one arena extent.

Greedy size-class replay (the ``REPRO_MEMPLAN=greedy`` fallback in
:mod:`repro.memplan.planner`) rounds every request up to a page class and
never splits or coalesces, so the static footprint carries both rounding
slack and free-list fragmentation. This module replaces it with classic
interference coloring over *exact* liveness intervals: every storage
request is an interval ``[lo, hi]`` over instruction indices plus a byte
size, two requests interfere iff their intervals overlap, and a
first-fit-decreasing sweep assigns each request the lowest aligned offset
whose byte range is free for its whole lifetime. The result is one
contiguous extent per plan whose size is the achieved peak; the
waterline of the interval set (max live bytes at any instruction) is the
planned lower bound, and the gap between the two is fragmentation the
packer could not close.

The first-fit scan is vectorized: placed intervals are kept in parallel
numpy arrays, the time-overlapping subset is selected with one mask, and
the lowest fitting gap falls out of a cumulative-max sweep over the
overlapping byte ranges. That keeps coloring fast enough to run inside
Echo's accept/reject loop (see :mod:`repro.memplan.estimate`), not just
once per compile.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

#: byte alignment of every placed offset; covers any dtype itemsize the
#: graph layer produces and keeps rows cache-line aligned
ALIGN = 64

#: one storage request: (key, first instr, last instr, nbytes);
#: the interval is closed — [lo, hi] both occupied
Request = tuple[Hashable, int, int, int]


def _align_up(x: int, align: int = ALIGN) -> int:
    return -(-x // align) * align


@dataclass
class PackResult:
    """Offsets plus the two peak-bytes figures coloring reports."""

    #: request key -> byte offset into the extent (zero-byte requests absent)
    offsets: dict[Hashable, int]
    #: achieved peak: the extent size the placement actually needs
    extent_bytes: int
    #: planned peak: the interval waterline (max simultaneously-live bytes),
    #: i.e. the lower bound any placement of these intervals must respect
    planned_peak_bytes: int


def waterline(requests: Sequence[Request]) -> int:
    """Max simultaneously-live bytes over the instruction stream."""
    events: list[tuple[int, int]] = []
    for _key, lo, hi, nbytes in requests:
        if nbytes <= 0:
            continue
        events.append((lo, nbytes))
        events.append((hi + 1, -nbytes))
    events.sort()
    cur = peak = 0
    for _t, delta in events:
        cur += delta
        if cur > peak:
            peak = cur
    return peak


def pack_intervals(
    requests: Sequence[Request], align: int = ALIGN
) -> PackResult:
    """First-fit-decreasing offset assignment for interfering intervals.

    Requests are placed largest-first (ties broken by start index, then
    input order, so the result is deterministic); each takes the lowest
    ``align``-multiple offset whose byte range does not intersect any
    already-placed request with an overlapping lifetime.
    """
    live = [(k, lo, hi, nb) for (k, lo, hi, nb) in requests if nb > 0]
    n = len(live)
    order = sorted(range(n), key=lambda i: (-live[i][3], live[i][1], i))
    lo_a = np.empty(n, dtype=np.int64)
    hi_a = np.empty(n, dtype=np.int64)
    off_a = np.empty(n, dtype=np.int64)
    end_a = np.empty(n, dtype=np.int64)
    offsets: dict[Hashable, int] = {}
    extent = 0
    count = 0
    for i in order:
        key, lo, hi, nbytes = live[i]
        off = 0
        if count:
            mask = (lo_a[:count] <= hi) & (hi_a[:count] >= lo)
            if mask.any():
                starts = off_a[:count][mask]
                ends = end_a[:count][mask]
                by_start = np.argsort(starts, kind="stable")
                starts = starts[by_start]
                ends = np.maximum.accumulate(ends[by_start])
                # Candidate cursors: offset 0, then past each blocked
                # prefix; a gap fits when the next blocked start leaves
                # ``nbytes`` of room (the sentinel makes "past everything"
                # always fit).
                cursors = np.empty(len(starts) + 1, dtype=np.int64)
                cursors[0] = 0
                cursors[1:] = -(-ends // align) * align
                avail = np.empty(len(starts) + 1, dtype=np.int64)
                avail[:-1] = starts
                avail[-1] = np.iinfo(np.int64).max
                fits = np.nonzero(avail - cursors >= nbytes)[0]
                off = int(cursors[fits[0]])
        offsets[key] = off
        lo_a[count] = lo
        hi_a[count] = hi
        off_a[count] = off
        end_a[count] = off + nbytes
        count += 1
        if off + nbytes > extent:
            extent = off + nbytes
    return PackResult(
        offsets=offsets,
        extent_bytes=extent,
        planned_peak_bytes=waterline(live),
    )


def atomic_tokens(
    placements: Mapping[Hashable, tuple[int, int]]
) -> dict[Hashable, tuple[int, ...]]:
    """Storage-hazard tokens for byte ranges sharing one extent.

    With every static buffer carved from a single raw extent, the greedy
    hazard rule — "same storage base ⇒ serialize" — would serialize the
    whole plan. Instead the extent is cut into *atomic intervals* at every
    placement boundary and each placement is labeled with the atoms its
    byte range covers: two placements intersect in memory iff they share
    an atom, so the wavefront hazard edges stay exact. ``placements`` maps
    a key to ``(offset, nbytes)``; zero-byte entries get no tokens.
    """
    bounds: set[int] = set()
    for off, nbytes in placements.values():
        if nbytes > 0:
            bounds.add(off)
            bounds.add(off + nbytes)
    cuts = sorted(bounds)
    tokens: dict[Hashable, tuple[int, ...]] = {}
    for key, (off, nbytes) in placements.items():
        if nbytes <= 0:
            tokens[key] = ()
            continue
        a = bisect_left(cuts, off)
        b = bisect_left(cuts, off + nbytes)
        tokens[key] = tuple(range(a, b))
    return tokens
