"""Buffer planning for compiled plans: greedy replay or interval coloring.

This is the memory-optimization stage between scheduling and lowering:
:class:`repro.runtime.compiled.CompiledPlan` hands it the instruction
descriptors and the slot alias-root table and gets back everything buffer
related — releasability, the free schedule, the static buffer views, and
(in ``color`` mode) the :class:`MemplanRecord` the analyzers and stats
consume.

Two modes, selected by ``REPRO_MEMPLAN``:

* ``greedy`` — the PR-2 behavior, byte for byte: replay the arena's
  size-class free lists at compile time, one acquire per releasable
  produced slot, releases when the group's simulated refcount drains.
  No rewriting, no record; kept as the fallback and the bitwise
  reference the property tests compare against.

* ``color`` (default) — run copy elision and in-place rewriting
  (:mod:`repro.memplan.elision`) over the stream, recompute liveness
  over the merged alias groups, and pack every releasable group's exact
  live interval into one contiguous arena extent by first-fit-decreasing
  coloring (:mod:`repro.memplan.coloring`). The extent is acquired from
  the arena's extent pool and immediately parked again, so sibling plans
  sharing an arena (the bucketed trainer) overlay one extent — footprint
  follows the largest plan, exactly like the greedy free lists.

Storage-hazard tokens: with one extent backing every static buffer, the
wavefront executor's "same raw base" rule would serialize everything, so
the color path labels each placement with the atomic byte-range tokens of
:func:`repro.memplan.coloring.atomic_tokens`; two instructions conflict
iff their placements actually intersect in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.memplan.coloring import Request, atomic_tokens, pack_intervals
from repro.memplan.elision import elide_copies, rewrite_inplace
from repro.obs import trace as obs_trace

#: storage spec of one alias group's backing buffer
_Spec = tuple[tuple[int, ...], Any, int]


@dataclass
class MemplanRecord:
    """What the color planner decided, for analyzers and plan stats.

    ``placements`` maps a storage key — an alias-group root slot, or
    ``("scratch", instr_idx, "a"|"b")`` for batched-GEMM stacking scratch
    — to ``(first_instr, last_instr, offset, nbytes)`` within the extent.
    """

    mode: str
    extent_bytes: int = 0
    planned_peak_bytes: int = 0
    placements: dict[Hashable, tuple[int, int, int, int]] = field(
        default_factory=dict
    )
    #: copy-elision rewrites (see :func:`repro.memplan.elision.elide_copies`)
    elided: list[dict[str, Any]] = field(default_factory=list)
    #: in-place rewrites (see :func:`~repro.memplan.elision.rewrite_inplace`)
    inplace: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class BufferAssignment:
    """Everything :class:`CompiledPlan` needs back from buffer planning."""

    releasable: list[bool]
    frees_at: dict[int, list[tuple[int, int, bool]]]
    static_views: dict[int, np.ndarray]
    #: color mode only; None in greedy mode
    record: MemplanRecord | None = None
    #: placement byte-range tokens for hazard edges (color mode only)
    storage_tokens: dict[Hashable, tuple[int, ...]] | None = None
    elided_copy_count: int = 0
    inplace_write_count: int = 0


def _liveness(
    descs: list[dict[str, Any]],
    root: list[int],
    never_freed: set[int],
    releasable: list[bool],
) -> tuple[dict[int, int], dict[int, int],
           dict[int, list[tuple[int, int, bool]]]]:
    """(def_at, last_use, frees_at) over the instruction stream.

    Identical to the lowering's historical liveness rules: a slot dies
    after its last consuming instruction (or its producer if never
    consumed); sources, constants, and outputs are never freed.
    """
    def_at: dict[int, int] = {}
    last_use: dict[int, int] = {}
    for idx, desc in enumerate(descs):
        for s in desc["in_slots"]:
            last_use[s] = idx
    for idx, desc in enumerate(descs):
        for s in desc["out_slots"]:
            def_at.setdefault(s, idx)
            last_use.setdefault(s, idx)
    frees_at: dict[int, list[tuple[int, int, bool]]] = {}
    for s, idx in last_use.items():
        if s in never_freed:
            continue
        frees_at.setdefault(idx, []).append((s, root[s], releasable[root[s]]))
    return def_at, last_use, frees_at


def _releasability(
    nslots: int,
    root: list[int],
    arena_produced: list[bool],
    output_slots: set[int],
) -> tuple[list[bool], dict[int, list[int]]]:
    """A group's storage is recyclable iff arena-made and never escaping."""
    members: dict[int, list[int]] = {}
    for s in range(nslots):
        members.setdefault(root[s], []).append(s)
    releasable = [False] * nslots
    for r, group in members.items():
        releasable[r] = arena_produced[r] and not any(
            m in output_slots for m in group
        )
    return releasable, members


def _storage_specs(descs: list[dict[str, Any]]) -> dict[int, _Spec]:
    """Backing-buffer spec for every arena-produced group root."""
    specs: dict[int, _Spec] = {}
    for desc in descs:
        kind = desc["kind"]
        if kind in ("out", "fused"):
            node = desc["node"]
            for j, s in enumerate(desc["out_slots"]):
                spec = node.out_specs[j]
                specs[s] = (spec.shape, spec.dtype, spec.nbytes)
        elif kind == "batched":
            node = desc["node"]
            spec = node.out_specs[0]
            group = len(desc["out_slots"])
            specs[desc["out_slots"][0]] = (
                (group,) + spec.shape, spec.dtype, group * spec.nbytes
            )
    return specs


def _assign_batched_storage_greedy(
    arena: Any,
    desc: dict[str, Any],
    releasable: list[bool],
    static_views: dict[int, np.ndarray],
) -> None:
    """Arena storage for one batched group: stacked output + scratch.

    The stacked result buffer joins the normal static replay (rooted at
    the group's first slot, released when every member view dies). Input
    stacking scratch is acquired once and never released — it is written
    and fully consumed inside the single batched instruction, but keeping
    it permanently owned means no other instruction can ever share its
    pages, which keeps the storage-hazard graph sparse.
    """
    node = desc["node"]
    spec = node.out_specs[0]
    group = len(desc["out_slots"])
    group_root = desc["out_slots"][0]
    stacked_nbytes = group * spec.nbytes
    if releasable[group_root] and stacked_nbytes > 0:
        static_views[group_root] = arena.acquire(
            (group,) + spec.shape, spec.dtype, stacked_nbytes
        )
    a, b = node.inputs
    if not desc["shared_a"]:
        desc["scratch_a"] = arena.acquire(
            (group,) + a.shape, a.dtype, group * a.nbytes
        )
    if not desc["shared_b"]:
        desc["scratch_b"] = arena.acquire(
            (group,) + b.shape, b.dtype, group * b.nbytes
        )


def _plan_greedy(
    descs: list[dict[str, Any]],
    root: list[int],
    nslots: int,
    arena_produced: list[bool],
    never_freed: set[int],
    output_slots: set[int],
    arena: Any,
) -> BufferAssignment:
    """The size-class free-list replay, byte for byte the PR-2 behavior."""
    releasable, _members = _releasability(
        nslots, root, arena_produced, output_slots
    )
    _def_at, _last_use, frees_at = _liveness(
        descs, root, never_freed, releasable
    )
    static_views: dict[int, np.ndarray] = {}
    sim_refs = [0] * nslots
    for fs in frees_at.values():
        for _s, r, _rel in fs:
            sim_refs[r] += 1
    for idx, desc in enumerate(descs):
        if desc["kind"] in ("out", "fused"):
            node = desc["node"]
            for j, s in enumerate(desc["out_slots"]):
                spec = node.out_specs[j]
                if releasable[s] and spec.nbytes > 0:
                    static_views[s] = arena.acquire(
                        spec.shape, spec.dtype, spec.nbytes
                    )
        elif desc["kind"] == "batched":
            _assign_batched_storage_greedy(
                arena, desc, releasable, static_views
            )
        for _s, r, rel in frees_at.get(idx, ()):
            sim_refs[r] -= 1
            if rel and sim_refs[r] == 0:
                view = static_views.get(r)
                if view is not None:
                    arena.release(view)
    return BufferAssignment(
        releasable=releasable,
        frees_at=frees_at,
        static_views=static_views,
        record=None,
        storage_tokens=None,
    )


def _plan_color(
    descs: list[dict[str, Any]],
    root: list[int],
    nslots: int,
    arena_produced: list[bool],
    never_freed: set[int],
    output_slots: set[int],
    arena: Any,
) -> BufferAssignment:
    """Elide copies, rewrite in-place, then color exact live intervals."""
    elided = elide_copies(descs, root, output_slots)
    storage_specs = _storage_specs(descs)
    inplace = rewrite_inplace(
        descs, root, arena_produced, never_freed, storage_specs
    )
    releasable, members = _releasability(
        nslots, root, arena_produced, output_slots
    )
    def_at, last_use, frees_at = _liveness(
        descs, root, never_freed, releasable
    )

    end = max(len(descs) - 1, 0)
    requests: list[Request] = []
    specs_of: dict[Hashable, _Spec] = {}
    for r, group in members.items():
        if not releasable[r]:
            continue
        spec = storage_specs.get(r)
        if spec is None or spec[2] <= 0:
            continue
        lo = def_at.get(r)
        if lo is None:
            continue
        hi = max(last_use.get(m, lo) for m in group)
        requests.append((r, lo, hi, spec[2]))
        specs_of[r] = spec
    for idx, desc in enumerate(descs):
        if desc["kind"] != "batched":
            continue
        node = desc["node"]
        a, b = node.inputs
        group = len(desc["out_slots"])
        for which, operand in (("a", a), ("b", b)):
            if desc[f"shared_{which}"]:
                continue
            nbytes = group * operand.nbytes
            if nbytes <= 0:
                continue
            key = ("scratch", idx, which)
            # Scratch is owned for the plan's whole life (as in greedy):
            # it is rewritten every iteration, so it must never time-share
            # bytes with any other placement.
            requests.append((key, idx, end, nbytes))
            specs_of[key] = ((group,) + operand.shape, operand.dtype, nbytes)

    packed = pack_intervals(requests)
    extent_bytes = packed.extent_bytes
    raw = arena.acquire_extent(extent_bytes) if extent_bytes > 0 else None

    static_views: dict[int, np.ndarray] = {}
    placements: dict[Hashable, tuple[int, int, int, int]] = {}
    byte_ranges: dict[Hashable, tuple[int, int]] = {}
    for key, lo, hi, nbytes in requests:
        shape, dtype, _n = specs_of[key]
        off = packed.offsets[key]
        assert raw is not None
        view = raw[off:off + nbytes].view(dtype).reshape(shape)
        placements[key] = (lo, hi, off, nbytes)
        byte_ranges[key] = (off, nbytes)
        if isinstance(key, tuple):
            _tag, idx, which = key
            descs[idx][f"scratch_{which}"] = view
        else:
            static_views[key] = view
    if raw is not None:
        # Park the extent for sibling plans compiled against this arena;
        # the views above keep it alive.
        arena.release_extent(raw)

    # Zero-byte scratch still needs an array for the stacked kernel view.
    for idx, desc in enumerate(descs):
        if desc["kind"] != "batched":
            continue
        node = desc["node"]
        a, b = node.inputs
        group = len(desc["out_slots"])
        for which, operand in (("a", a), ("b", b)):
            if desc[f"shared_{which}"] or desc[f"scratch_{which}"] is not None:
                continue
            desc[f"scratch_{which}"] = np.empty(
                (group,) + operand.shape, dtype=operand.dtype
            )

    record = MemplanRecord(
        mode="color",
        extent_bytes=extent_bytes,
        planned_peak_bytes=packed.planned_peak_bytes,
        placements=placements,
        elided=elided,
        inplace=inplace,
    )
    return BufferAssignment(
        releasable=releasable,
        frees_at=frees_at,
        static_views=static_views,
        record=record,
        storage_tokens=atomic_tokens(byte_ranges),
        elided_copy_count=sum(len(e["out_slots"]) for e in elided),
        inplace_write_count=len(inplace),
    )


def plan_buffers(
    mode: str,
    descs: list[dict[str, Any]],
    root: list[int],
    nslots: int,
    arena_produced: list[bool],
    source_slots: set[int],
    constant_slots: set[int],
    output_slots: set[int],
    arena: Any,
) -> BufferAssignment:
    """Assign static storage for one lowered stream; may rewrite it.

    ``descs``, ``root``, and ``arena_produced`` are the compiler's working
    records and are mutated in place (color mode rewrites copies to
    aliases and merges alias groups). The returned assignment carries the
    free schedule and static views the closure baker consumes.
    """
    never_freed = set(source_slots) | set(constant_slots) | set(output_slots)
    planner = _plan_color if mode == "color" else _plan_greedy
    with obs_trace.span(
        "memplan.pack", "plan", {"mode": mode, "instrs": len(descs)}
    ) as sp:
        assignment = planner(
            descs, root, nslots, arena_produced, never_freed, output_slots,
            arena,
        )
        record = assignment.record
        if record is not None:
            sp["extent_bytes"] = record.extent_bytes
    return assignment
