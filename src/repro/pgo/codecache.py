"""Persistent bytecode cache for generated instruction closures.

Profiling the compile path shows that ``builtins.compile`` over the
thousands of tiny generated sources (one per instruction closure, plus the
baked dispatch bodies) is ~60% of :class:`CompiledPlan` construction. The
sources are pure functions of the lowered program, so a warm process can
skip the compiler entirely: this cache maps ``sha256(source)`` to the
marshalled code object, persisted as one file under the tuning directory.

Keys include :data:`sys.implementation.cache_tag` (marshalled bytecode is
interpreter-version specific), so a cache written by one Python never
poisons another. A corrupted or truncated file deserializes to an empty
cache — every lookup then misses and falls back to ``compile``, which is
always correct, just cold.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import threading
from pathlib import Path
from types import CodeType

__all__ = ["BytecodeCache"]

_MAGIC = b"RBC1"


class BytecodeCache:
    """Source-hash-keyed ``compile`` memo with one-file persistence."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._codes: dict[str, CodeType] = {}
        self._loaded = False
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self.load_errors = 0

    @staticmethod
    def _key(source: str) -> str:
        tag = sys.implementation.cache_tag or sys.version
        return hashlib.sha256(
            (tag + "\x00" + source).encode("utf-8")
        ).hexdigest()

    def _load_locked(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        try:
            blob = self.path.read_bytes()
        except OSError:
            return
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            payload = marshal.loads(blob[len(_MAGIC):])
            if not isinstance(payload, dict):
                raise ValueError("bad payload")
            for key, code in payload.items():
                if isinstance(key, str) and isinstance(code, CodeType):
                    self._codes[key] = code
        except (ValueError, EOFError, TypeError):
            self._codes.clear()
            self.load_errors += 1

    def compile(self, source: str, filename: str = "<compiled-plan>"):
        """``compile(source, filename, "exec")``, memoized across processes."""
        key = self._key(source)
        with self._lock:
            self._load_locked()
            code = self._codes.get(key)
            if code is not None:
                self.hits += 1
                return code
        code = compile(source, filename, "exec")
        with self._lock:
            self.misses += 1
            self._codes[key] = code
            self._dirty = True
        return code

    def flush(self) -> bool:
        """Persist new entries (merged with current disk state); atomic.

        Returns True when a write happened. Concurrent writers both
        read-merge-write; entries are content-addressed, so interleavings
        can only lose freshly-added entries of one writer (they will be
        re-added on its next flush), never corrupt the mapping.
        """
        with self._lock:
            if not self._dirty:
                return False
            self._load_locked()
            # Merge whatever another process flushed since our load.
            on_disk = BytecodeCache(self.path)
            with on_disk._lock:
                on_disk._load_locked()
            merged = dict(on_disk._codes)
            merged.update(self._codes)
            self._codes = merged
            blob = _MAGIC + marshal.dumps(
                {k: v for k, v in merged.items()}
            )
            tmp = self.path.with_name(
                f"{self.path.name}.tmp.{os.getpid()}"
            )
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_bytes(blob)
                os.replace(tmp, self.path)
            except OSError:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                return False
            self._dirty = False
            return True
