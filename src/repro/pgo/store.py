"""The persistent tuning store: one directory of calibration + plan artifacts.

Layout under ``REPRO_TUNE_DIR``::

    calibration.json            decayed cost records (CalibrationDB)
    autotune.json               backend-selection results per config
    bytecode.bin                marshalled instruction-closure bytecode
    plans/<fp>.order.json       schedule order (canonical topo indices)
    plans/<fp>.<dev>...json     wavefront layout per (device, threads, ...)
    stats/<pid>.json            per-process counter dumps (opt-in)

Everything is versioned JSON (the bytecode file is marshal with a magic
header) written atomically (temp file + ``os.replace``); a corrupted or
truncated artifact is counted and ignored — the caller recomputes, exactly
as a cold process would. Calibration and autotune files are merged
read-modify-write under a best-effort lock file, so two processes tuning
into the same directory both land their observations.

Cross-process identity is the hard part: node uids (and default
priorities) are a process-global counter, so nothing uid-shaped may reach
disk. :func:`graph_fingerprint` renames every node to its index in the
deterministic ``topo_order`` walk and replaces priorities by their *rank*
— two processes building the same model agree on both — and hashes ops,
stages, edges, shapes, and attrs with sha256 (Python's ``hash`` is
per-process salted). Plan orders are stored as canonical-index
permutations and re-validated against the live graph on load.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.graph.node import Node, Tensor
from repro.graph.traversal import topo_order
from repro.pgo.codecache import BytecodeCache
from repro.pgo.records import CalibrationDB
from repro.runtime.scheduler import SchedulingError, validate_schedule

__all__ = [
    "STORE_VERSION",
    "graph_fingerprint",
    "TuneStore",
    "default_store",
    "reset_default_stores",
]

STORE_VERSION = 1

_COUNTER_KEYS = (
    "order_hits", "order_misses",
    "wavefront_hits", "wavefront_misses",
    "autotune_hits", "autotune_misses",
    "calibration_saves", "load_errors", "saves",
)


# -- graph fingerprint ------------------------------------------------------


def _attr_token(value: Any) -> Any:
    """A process-stable, repr-able stand-in for one attr value."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()[:16]
        return ("nd", tuple(arr.shape), str(arr.dtype), digest)
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_attr_token(v) for v in value)
    if isinstance(value, dict):
        return tuple(
            (str(k), _attr_token(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, np.dtype):
        return str(value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    # Unknown object (a Tensor, an Op, ...): its repr may embed uids, so
    # only the type name participates. Collisions here would have to agree
    # on every shape, edge, and op to matter.
    return type(value).__name__


def graph_fingerprint(outputs: Sequence[Tensor]) -> str:
    """Process-stable structural hash of the graph under ``outputs``.

    Unlike :func:`repro.runtime.plancache.graph_signature` (uid-based,
    process-local, cheap), this renames nodes to canonical topo indices
    and priorities to ranks, so the same model built in two processes
    yields the same string.
    """
    nodes = topo_order(outputs)
    index = {n.uid: i for i, n in enumerate(nodes)}
    by_priority = sorted(range(len(nodes)),
                         key=lambda i: (nodes[i].priority, i))
    rank = [0] * len(nodes)
    for r, i in enumerate(by_priority):
        rank[i] = r
    items: list[Any] = []
    for i, node in enumerate(nodes):
        items.append((
            i,
            node.op.name,
            node.stage.value,
            rank[i],
            node.scope,
            tuple((index[t.node.uid], t.index) for t in node.inputs),
            tuple((s.shape, str(s.dtype)) for s in node.out_specs),
            tuple(
                (str(k), _attr_token(v))
                for k, v in sorted(node.attrs.items())
            ),
        ))
    items.append(tuple((index[t.node.uid], t.index) for t in outputs))
    blob = repr(items).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:32]


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in text)


def device_token_string(token: Any) -> str:
    """Flatten a device ``cache_token`` (tuple) into a filename-safe slug."""
    if isinstance(token, (tuple, list)):
        return _slug("-".join(str(p) for p in token))
    return _slug(str(token))


# -- the store --------------------------------------------------------------


class TuneStore:
    """Artifact persistence for one ``REPRO_TUNE_DIR``.

    Thread-safe (one reentrant lock around mutable state; file writes are
    atomic) and tolerant of concurrent processes. All loads are
    *advisory*: any failure — missing file, bad JSON, wrong version,
    content that does not validate against the live graph — returns None
    and the caller rebuilds from scratch.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.plans_dir = self.root / "plans"
        self.plans_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self.counters: dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        self._calibration: CalibrationDB | None = None
        self._code_cache: BytecodeCache | None = None
        self._autotune: dict[str, Any] | None = None
        self._fingerprints: dict[Hashable, str] = {}
        if os.environ.get("REPRO_TUNE_STATS", "").strip():
            import atexit

            atexit.register(self.dump_stats)

    # -- low-level JSON io ---------------------------------------------------

    def _bump(self, key: str, by: int = 1) -> None:
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + by

    def _read_json(self, path: Path) -> dict[str, Any] | None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._bump("load_errors")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STORE_VERSION
        ):
            self._bump("load_errors")
            return None
        return payload

    def _write_json(self, path: Path, payload: dict[str, Any]) -> None:
        payload = dict(payload)
        payload.setdefault("version", STORE_VERSION)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
            self._bump("saves")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @contextmanager
    def _file_lock(self, name: str = ".lock") -> Iterator[None]:
        """Best-effort cross-process mutex (O_EXCL lock file + timeout).

        A holder that died leaves a stale lock; after the timeout the
        waiter steals it — merges are read-modify-write over full
        payloads, so the worst case of a steal is one lost update, never
        a torn file (writes stay atomic via ``os.replace``).
        """
        path = self.root / name
        deadline = time.monotonic() + 5.0
        fd = None
        while fd is None:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if time.monotonic() > deadline:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    deadline = time.monotonic() + 5.0
                time.sleep(0.005)
            except OSError:
                break  # unwritable dir: proceed without the lock
        try:
            yield
        finally:
            if fd is not None:
                os.close(fd)
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- calibration ---------------------------------------------------------

    def calibration(self, reload: bool = False) -> CalibrationDB:
        """The persisted calibration DB (empty when absent or corrupt)."""
        with self._lock:
            if self._calibration is not None and not reload:
                return self._calibration
            payload = self._read_json(self.root / "calibration.json")
            db = CalibrationDB()
            if payload is not None:
                try:
                    db = CalibrationDB.from_payload(payload.get("db", {}))
                except (ValueError, KeyError, TypeError):
                    self._bump("load_errors")
                    db = CalibrationDB()
            self._calibration = db
            return db

    def save_calibration(self, db: CalibrationDB) -> CalibrationDB:
        """Merge ``db`` into the on-disk state and bump the epoch.

        Returns the merged DB (which this store also adopts as current).
        Safe under concurrent writers: the read-merge-write runs under the
        store's lock file, so both writers' records land.
        """
        with self._file_lock():
            payload = self._read_json(self.root / "calibration.json")
            merged = CalibrationDB()
            if payload is not None:
                try:
                    merged = CalibrationDB.from_payload(payload.get("db", {}))
                except (ValueError, KeyError, TypeError):
                    self._bump("load_errors")
            merged.merge(db)
            merged.epoch = max(merged.epoch, db.epoch) + 1
            self._write_json(
                self.root / "calibration.json", {"db": merged.to_payload()}
            )
        with self._lock:
            self._calibration = merged
            self._bump("calibration_saves")
        return merged

    # -- fingerprints and plan orders ---------------------------------------

    def fingerprint_for(
        self, outputs: Sequence[Tensor], sig: Hashable | None = None
    ) -> str:
        """Memoized :func:`graph_fingerprint` (keyed by graph signature)."""
        if sig is None:
            return graph_fingerprint(outputs)
        with self._lock:
            fp = self._fingerprints.get(sig)
        if fp is None:
            fp = graph_fingerprint(outputs)
            with self._lock:
                self._fingerprints[sig] = fp
        return fp

    def _order_path(self, fp: str, flavor: str = "") -> Path:
        # ``flavor`` separates differently-produced orders for the same
        # graph (e.g. the memory-aware schedule vs the plain priority
        # order) into distinct files, so switching REPRO_MEMPLAN never
        # serves a stale permutation.
        if flavor:
            return self.plans_dir / f"{fp}.{_slug(flavor)}.order.json"
        return self.plans_dir / f"{fp}.order.json"

    def load_order(
        self,
        outputs: Sequence[Tensor],
        sig: Hashable | None = None,
        flavor: str = "",
    ) -> list[Node] | None:
        """A persisted schedule order, mapped onto the live graph's nodes."""
        fp = self.fingerprint_for(outputs, sig)
        payload = self._read_json(self._order_path(fp, flavor))
        if payload is None:
            self._bump("order_misses")
            return None
        nodes = topo_order(outputs)
        perm = payload.get("order")
        if (
            not isinstance(perm, list)
            or len(perm) != len(nodes)
            or sorted(perm) != list(range(len(nodes)))
        ):
            self._bump("load_errors")
            self._bump("order_misses")
            return None
        order = [nodes[i] for i in perm]
        try:
            validate_schedule(order)
        except (SchedulingError, KeyError):
            self._bump("load_errors")
            self._bump("order_misses")
            return None
        self._bump("order_hits")
        return order

    def save_order(
        self,
        outputs: Sequence[Tensor],
        order: Sequence[Node],
        sig: Hashable | None = None,
        flavor: str = "",
    ) -> None:
        fp = self.fingerprint_for(outputs, sig)
        nodes = topo_order(outputs)
        index = {n.uid: i for i, n in enumerate(nodes)}
        try:
            perm = [index[n.uid] for n in order]
        except KeyError:
            return  # order mentions nodes outside the graph; don't persist
        self._write_json(self._order_path(fp, flavor), {"order": perm})

    # -- wavefront layouts ---------------------------------------------------

    def _wavefront_path(
        self,
        fp: str,
        token: Any,
        threads: int,
        fuse: bool,
        batch_gemms: bool,
        memplan: str = "greedy",
    ) -> Path:
        # The memplan mode changes slot aliasing and hazard tokens, which
        # the wavefront layout bakes in — it is part of the artifact key.
        name = (
            f"{fp}.{device_token_string(token)}"
            f".t{threads}.f{int(fuse)}.g{int(batch_gemms)}"
            f".m{_slug(memplan)}.wavefront.json"
        )
        return self.plans_dir / name

    def load_wavefront(
        self,
        fp: str,
        token: Any,
        threads: int,
        fuse: bool,
        batch_gemms: bool,
        memplan: str = "greedy",
    ) -> dict[str, Any] | None:
        """The persisted wavefront artifact for one compiled-plan key.

        The device ``token`` embeds the calibration epoch for calibrated
        devices, so recalibration silently invalidates stale layouts (the
        old file keys never match again).
        """
        path = self._wavefront_path(
            fp, token, threads, fuse, batch_gemms, memplan
        )
        payload = self._read_json(path)
        if payload is None or "artifact" not in payload:
            self._bump("wavefront_misses")
            return None
        self._bump("wavefront_hits")
        return payload["artifact"]

    def save_wavefront(
        self,
        fp: str,
        token: Any,
        threads: int,
        fuse: bool,
        batch_gemms: bool,
        artifact: dict[str, Any] | None,
        memplan: str = "greedy",
    ) -> None:
        if artifact is None:
            return
        path = self._wavefront_path(
            fp, token, threads, fuse, batch_gemms, memplan
        )
        self._write_json(path, {"artifact": artifact})

    # -- autotune ------------------------------------------------------------

    def load_autotune(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            if self._autotune is None:
                payload = self._read_json(self.root / "autotune.json")
                self._autotune = (
                    dict(payload.get("entries", {}))
                    if payload is not None
                    else {}
                )
            entry = self._autotune.get(key)
        if entry is None:
            self._bump("autotune_misses")
            return None
        self._bump("autotune_hits")
        return entry

    def save_autotune(self, key: str, entry: dict[str, Any]) -> None:
        with self._file_lock():
            payload = self._read_json(self.root / "autotune.json")
            entries = (
                dict(payload.get("entries", {})) if payload is not None else {}
            )
            entries[key] = entry
            self._write_json(self.root / "autotune.json",
                             {"entries": entries})
        with self._lock:
            if self._autotune is not None:
                self._autotune[key] = entry

    # -- bytecode ------------------------------------------------------------

    def code_cache(self) -> BytecodeCache:
        with self._lock:
            if self._code_cache is None:
                self._code_cache = BytecodeCache(self.root / "bytecode.bin")
            return self._code_cache

    def flush_code_cache(self) -> None:
        with self._lock:
            cache = self._code_cache
        if cache is not None:
            cache.flush()

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counter snapshot, including the bytecode cache's hit/miss."""
        with self._lock:
            out = dict(self.counters)
            cache = self._code_cache
        if cache is not None:
            out["bytecode_hits"] = cache.hits
            out["bytecode_misses"] = cache.misses
            out["load_errors"] = out.get("load_errors", 0) + cache.load_errors
        return out

    def dump_stats(self) -> Path | None:
        """Write this process's counters under ``stats/`` (CI warm check)."""
        stats_dir = self.root / "stats"
        try:
            stats_dir.mkdir(parents=True, exist_ok=True)
            # Instance-unique name: a process can hold several stores over
            # one directory (tests re-point and reset); their counters are
            # disjoint, so CI sums every dump rather than letting the last
            # atexit callback win.
            path = stats_dir / f"{os.getpid()}.{id(self):x}.json"
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"version": STORE_VERSION, **self.stats()}, fh)
        except OSError:
            return None
        return path


# -- process-wide default ---------------------------------------------------

_STORES: dict[str, TuneStore] = {}
_STORES_LOCK = threading.Lock()


def default_store() -> TuneStore | None:
    """The :class:`TuneStore` named by ``REPRO_TUNE_DIR``, or None.

    One instance per distinct directory per process, so every plan cache
    and autotuner in the process shares counters and in-memory state.
    """
    path = os.environ.get("REPRO_TUNE_DIR", "").strip()
    if not path:
        return None
    key = str(Path(path).expanduser())
    with _STORES_LOCK:
        store = _STORES.get(key)
        if store is None:
            try:
                store = TuneStore(key)
            except OSError:
                return None
            _STORES[key] = store
        return store


def reset_default_stores() -> None:
    """Drop memoized default stores (tests re-pointing ``REPRO_TUNE_DIR``)."""
    with _STORES_LOCK:
        _STORES.clear()
