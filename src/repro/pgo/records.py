"""Calibration records: measured per-(opcode, shape-class) kernel costs.

The analytical :class:`repro.gpumodel.DeviceModel` prices every node from
first principles (roofline + launch constants). This module holds the
*measured* side of the loop: host wall-clock samples of the same kernels,
keyed by a shape class coarse enough to generalize across node instances
but fine enough to separate a 512-wide GEMM from a 64-wide one. The
:class:`CalibrationDB` merges repeated observations with exponential decay
— old runs fade, repeated runs sharpen — and survives JSON round-trips
through :class:`repro.pgo.store.TuneStore`.

Host seconds and simulated device seconds live in different domains (numpy
kernels are ~100x the simulated GPU times for the same bytes/flops), so
records keep, next to each measurement, the analytical *reference* cost of
the same class. The geometric mean of reference/measured over all covered
classes is the domain scale that maps measured structure back into model
units — see :class:`repro.pgo.calibrated.CalibratedDeviceModel`.

Also home to :func:`robust_best`, the best-of-k timing reducer with an
interquartile outlier fence shared by the microbenchmark and the per-node
measurement harness: a single descheduled run (or a timer glitch on the
fast side) must not poison a calibration record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph import Node

__all__ = [
    "DB_VERSION",
    "DECAY",
    "RobustTiming",
    "robust_best",
    "shape_class",
    "CostRecord",
    "CalibrationDB",
]

#: schema version of serialized calibration payloads
DB_VERSION = 1

#: per-observation exponential decay: a new sample carries weight 1 and
#: every existing sample's weight is multiplied by this first, so the
#: estimate tracks drift while repeated runs sharpen it (the effective
#: sample count converges to 1 / (1 - DECAY))
DECAY = 0.85

_WEIGHT_CAP = 1.0 / (1.0 - DECAY)

#: ops that produce no kernel work and must never be calibrated
_UNCOSTED_OPS = ("placeholder", "variable", "constant")


# -- robust timing ----------------------------------------------------------


@dataclass(frozen=True)
class RobustTiming:
    """Best-of-k wall-clock measurement with an IQR sanity check."""

    #: the reported time: the minimum of the samples inside the fence
    seconds: float
    #: all raw samples, sorted ascending
    samples: tuple[float, ...]
    #: samples discarded by the interquartile fence
    discarded: int
    #: whether the surviving samples agree (IQR small vs. the median);
    #: an unstable timing is still usable — min-of-k is itself robust to
    #: slow outliers — but callers may weigh it down or re-measure
    stable: bool

    @property
    def median_seconds(self) -> float:
        kept = self.samples
        n = len(kept)
        mid = n // 2
        if n % 2:
            return kept[mid]
        return 0.5 * (kept[mid - 1] + kept[mid])


def _quartiles(xs: list[float]) -> tuple[float, float]:
    """(Q1, Q3) by linear interpolation over a sorted sample."""

    def at(q: float) -> float:
        pos = q * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return xs[lo]
        return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)

    return at(0.25), at(0.75)


def robust_best(samples: Iterable[float]) -> RobustTiming:
    """Reduce repeated timings to best-of-k inside an interquartile fence.

    The minimum is the classic microbenchmark statistic (the run with the
    least interference), but a raw min is vulnerable to below-resolution
    timer glitches and a raw mean to scheduler jitter. So: sort, fence at
    ``[Q1 - 1.5 IQR, Q3 + 1.5 IQR]``, take the minimum of what survives.
    """
    xs = sorted(float(s) for s in samples if math.isfinite(s) and s >= 0.0)
    if not xs:
        raise ValueError("robust_best needs at least one sample")
    if len(xs) < 4:
        # Too few points for quartiles; fence nothing.
        spread = xs[-1] - xs[0]
        stable = spread <= 0.25 * max(xs[0], 1e-12)
        return RobustTiming(xs[0], tuple(xs), 0, stable or len(xs) == 1)
    q1, q3 = _quartiles(xs)
    iqr = q3 - q1
    lo = q1 - 1.5 * iqr
    hi = q3 + 1.5 * iqr
    kept = [x for x in xs if lo <= x <= hi]
    if not kept:  # degenerate (all identical handled above; be safe)
        kept = xs
    median = kept[len(kept) // 2]
    stable = iqr <= 0.25 * max(median, 1e-12)
    return RobustTiming(
        seconds=kept[0],
        samples=tuple(xs),
        discarded=len(xs) - len(kept),
        stable=stable,
    )


# -- shape classes ----------------------------------------------------------


def shape_class(node: "Node") -> str | None:
    """Calibration key of one node, or None when the node has no kernel.

    GEMM-family nodes key by their exact ``(m, n, k, batch)`` — GEMM time
    is strongly shape-dependent and the dims recur across instances (every
    decoder step runs the same attention GEMM). Everything else keys by op
    name and quarter-octave-bucketed bytes accessed, the same quantity the
    analytical model's bandwidth term reads.
    """
    op = node.op
    if op.name in _UNCOSTED_OPS:
        return None
    gemm_dims = getattr(op, "gemm_dims", None)
    if gemm_dims is not None:
        m, n, k = gemm_dims(node)
        batch = node.inputs[0].shape[0] if op.name == "batch_dot" else 1
        return f"{op.name}:g{m}x{n}x{k}x{batch}"
    nbytes = op.bytes_accessed(node)
    if nbytes <= 0:
        return None  # views and other zero-traffic nodes
    bucket = int(round(4.0 * math.log2(nbytes)))
    return f"{op.name}:b{bucket}"


# -- records ----------------------------------------------------------------


@dataclass
class CostRecord:
    """Decayed running estimate of one shape class's measured kernel time."""

    #: exponentially-decayed mean of the observed (best-of-k) seconds
    seconds: float
    #: effective sample count (capped at 1 / (1 - DECAY))
    weight: float = 1.0
    #: total observations ever folded in
    count: int = 1
    #: fastest observation ever seen
    min_seconds: float = 0.0
    #: analytical model's kernel seconds for the same class (latest)
    ref_seconds: float = 0.0

    def observe(self, seconds: float, ref_seconds: float) -> None:
        decayed = self.weight * DECAY
        self.seconds = (self.seconds * decayed + seconds) / (decayed + 1.0)
        self.weight = min(decayed + 1.0, _WEIGHT_CAP)
        self.count += 1
        self.min_seconds = min(self.min_seconds, seconds)
        if ref_seconds > 0.0:
            self.ref_seconds = ref_seconds

    def merged_with(self, other: "CostRecord") -> "CostRecord":
        """Weight-weighted combination (concurrent-writer reconciliation)."""
        w = self.weight + other.weight
        return CostRecord(
            seconds=(self.seconds * self.weight + other.seconds * other.weight)
            / w,
            weight=min(w, _WEIGHT_CAP),
            count=self.count + other.count,
            min_seconds=min(self.min_seconds, other.min_seconds),
            ref_seconds=other.ref_seconds or self.ref_seconds,
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "s": self.seconds,
            "w": self.weight,
            "n": self.count,
            "min": self.min_seconds,
            "ref": self.ref_seconds,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CostRecord":
        return cls(
            seconds=float(payload["s"]),
            weight=float(payload["w"]),
            count=int(payload["n"]),
            min_seconds=float(payload["min"]),
            ref_seconds=float(payload["ref"]),
        )


@dataclass
class CalibrationDB:
    """All cost records of one tuning directory, plus the epoch counter.

    The *epoch* increments on every persisted save and is part of every
    calibrated device's ``cache_token``, so plan artifacts tuned against
    one calibration state never serve a process holding a newer one.
    """

    records: dict[str, CostRecord] = field(default_factory=dict)
    epoch: int = 0

    def observe(self, cls: str, seconds: float, ref_seconds: float) -> None:
        if seconds <= 0.0 or not math.isfinite(seconds):
            return
        rec = self.records.get(cls)
        if rec is None:
            self.records[cls] = CostRecord(
                seconds=seconds, min_seconds=seconds, ref_seconds=ref_seconds
            )
        else:
            rec.observe(seconds, ref_seconds)

    def record_for(
        self, cls: str | None, min_weight: float = 1.0
    ) -> CostRecord | None:
        """The record covering ``cls``, or None below the coverage bar."""
        if cls is None:
            return None
        rec = self.records.get(cls)
        if rec is None or rec.weight < min_weight:
            return None
        return rec

    def coverage(self) -> int:
        return len(self.records)

    def model_scale(self) -> float:
        """Geometric-mean measured-to-model domain scale.

        ``model_seconds ~= measured_seconds * model_scale()``: multiplying
        a measured record by this lands it in the analytical model's unit
        system, so calibrated and analytical costs mix freely in the same
        accept/reject comparisons and cost gates.
        """
        logs = [
            math.log(rec.ref_seconds / rec.seconds)
            for rec in self.records.values()
            if rec.ref_seconds > 0.0 and rec.seconds > 0.0
        ]
        if not logs:
            return 1.0
        return math.exp(sum(logs) / len(logs))

    def merge(self, other: "CalibrationDB") -> None:
        """Fold another DB in (disk state + this process's observations)."""
        for cls, rec in other.records.items():
            mine = self.records.get(cls)
            self.records[cls] = (
                CostRecord(**vars(rec)) if mine is None
                else mine.merged_with(rec)
            )
        self.epoch = max(self.epoch, other.epoch)

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": DB_VERSION,
            "epoch": self.epoch,
            "records": {
                cls: rec.to_payload() for cls, rec in self.records.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CalibrationDB":
        if not isinstance(payload, dict):
            raise ValueError("calibration payload is not an object")
        if payload.get("version") != DB_VERSION:
            raise ValueError(
                f"calibration version {payload.get('version')!r} != "
                f"{DB_VERSION}"
            )
        records = {
            str(k): CostRecord.from_payload(v)
            for k, v in payload.get("records", {}).items()
        }
        return cls(records=records, epoch=int(payload.get("epoch", 0)))
