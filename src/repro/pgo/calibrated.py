"""The calibrated device model: measured records first, roofline fallback.

Every cost-driven decision in the stack — Echo accept/reject, the
wavefront chunking gate, GEMM-batching, FC layout selection — asks a
:class:`repro.gpumodel.DeviceModel` to price nodes. This module swaps in a
subclass that answers from the calibration database whenever a node's
shape class has measured coverage, and defers to the analytical model
otherwise, so coverage improves decisions incrementally without ever
degrading the uncovered ones.

Measured host seconds and simulated device seconds differ by a large
constant factor (numpy vs. a modeled GPU), so measured values are mapped
into the model's unit system via the database's geometric-mean domain
scale before mixing — relative structure (which op dominates, which GEMM
shape is slower) is what transfers, and relative structure is what every
consumer compares.
"""

from __future__ import annotations

from repro.gpumodel.devices import (
    TITAN_XP,
    DeviceModel,
    DeviceSpec,
    KernelCost,
)
from repro.graph.node import Node
from repro.pgo.records import CalibrationDB, shape_class

__all__ = [
    "CalibratedDeviceModel",
    "default_device",
    "device_token",
]


class CalibratedDeviceModel(DeviceModel):
    """A :class:`DeviceModel` that prefers measured cost records.

    ``min_weight`` is the coverage bar: a record must have accumulated at
    least that much effective sample weight before it overrides the
    analytical estimate (one clean observation suffices by default).
    """

    def __init__(
        self,
        db: CalibrationDB,
        spec: DeviceSpec = TITAN_XP,
        min_weight: float = 1.0,
    ) -> None:
        super().__init__(spec)
        self.db = db
        self.min_weight = min_weight
        self._scale = db.model_scale()
        self.calibrated_hits = 0
        self.analytic_fallbacks = 0

    def __repr__(self) -> str:
        return (
            f"CalibratedDeviceModel({self.spec.name}, "
            f"coverage={self.db.coverage()}, epoch={self.db.epoch})"
        )

    @property
    def cache_token(self) -> tuple:
        return (self.spec.name, "calibrated", self.db.epoch)

    def node_cost(self, node: Node) -> KernelCost:
        base = super().node_cost(node)
        if base.kernel_seconds <= 0.0:
            return base  # uncosted op or pure view; nothing to calibrate
        rec = self.db.record_for(shape_class(node), self.min_weight)
        if rec is None:
            self.analytic_fallbacks += 1
            return base
        self.calibrated_hits += 1
        return KernelCost(
            kernel_seconds=rec.seconds * self._scale,
            api_seconds=base.api_seconds,
            dram_bytes=base.dram_bytes,
            launches=base.launches,
        )

    def predict_host_seconds(self, node: Node) -> float:
        """Predicted *host* wall-clock of one node (benchmark comparisons).

        Covered classes answer in measured units directly; uncovered ones
        map the analytical estimate back through the domain scale.
        """
        rec = self.db.record_for(shape_class(node), self.min_weight)
        if rec is not None:
            self.calibrated_hits += 1
            return rec.seconds
        self.analytic_fallbacks += 1
        base = super().node_cost(node)
        return base.kernel_seconds / self._scale


def default_device(spec: DeviceSpec = TITAN_XP) -> DeviceModel:
    """The ambient device model: calibrated iff a tuning store has data.

    With no ``REPRO_TUNE_DIR`` (or an empty/corrupt calibration file) this
    is exactly ``DeviceModel(spec)`` — behavior without the env var is
    bit-for-bit the pre-PGO default.
    """
    from repro.pgo.store import default_store

    store = default_store()
    if store is None:
        return DeviceModel(spec)
    db = store.calibration()
    if db.coverage() == 0:
        return DeviceModel(spec)
    return CalibratedDeviceModel(db, spec)


def device_token(device: DeviceModel | None = None) -> tuple:
    """The cache token of ``device`` (or of the ambient default)."""
    if device is None:
        device = default_device()
    token = getattr(device, "cache_token", None)
    if token is None:
        return (device.spec.name, "analytic")
    return token
