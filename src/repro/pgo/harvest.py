"""Harvesting: turn host measurements into calibration records.

The bridge between :func:`repro.profiler.measure_node_timings` (raw
wall-clock per node) and :class:`repro.pgo.records.CalibrationDB` (decayed
per-shape-class estimates). Each measured node contributes one observation
to its shape class, paired with the analytical model's kernel estimate for
the same node so the database can maintain the measured-to-model domain
scale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.gpumodel.devices import DeviceModel
from repro.obs import trace as obs_trace
from repro.pgo.records import CalibrationDB, shape_class
from repro.profiler.runtime import measure_node_timings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autodiff.training import TrainingGraph
    from repro.graph import Node
    from repro.pgo.store import TuneStore

__all__ = [
    "harvest_node_timings",
    "harvest_training_graph",
    "calibrate_and_save",
]


def harvest_node_timings(
    order: Sequence["Node"],
    feeds: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    db: CalibrationDB,
    device: DeviceModel | None = None,
    repeats: int = 5,
) -> int:
    """Measure every kernel in ``order`` and fold it into ``db``.

    Returns the number of observations recorded. Unstable timings (IQR
    check failed) still contribute — best-of-k is already robust to slow
    outliers — but nodes whose shape class is None (placeholders, views)
    are skipped, as are zero/negative samples.
    """
    device = device or DeviceModel()
    observed = 0
    for timing in measure_node_timings(order, feeds, params, repeats=repeats):
        cls = shape_class(timing.node)
        if cls is None:
            continue
        ref = device.node_cost(timing.node).kernel_seconds
        db.observe(cls, timing.seconds, ref)
        observed += 1
    return observed


def harvest_training_graph(
    graph: "TrainingGraph",
    feeds: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    db: CalibrationDB,
    device: DeviceModel | None = None,
    repeats: int = 5,
) -> int:
    """Harvest a whole training graph (forward + backward kernels)."""
    from repro.runtime.scheduler import schedule

    order = schedule(graph.outputs)
    return harvest_node_timings(
        order, feeds, params, db, device=device, repeats=repeats
    )


def calibrate_and_save(
    graph: "TrainingGraph",
    feeds: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    store: "TuneStore",
    device: DeviceModel | None = None,
    repeats: int = 5,
) -> CalibrationDB:
    """Measure ``graph``, merge into ``store``, return the merged DB.

    The persisted epoch bumps, so previously cached cost-derived artifacts
    (Echo analyses, wavefront layouts keyed by calibrated device tokens)
    stop matching and are rebuilt against the fresh records.
    """
    with obs_trace.span(
        "pgo.calibrate", "pgo", {"repeats": repeats}
    ) as sp:
        db = store.calibration()
        harvested = harvest_training_graph(
            graph, feeds, params, db, device=device, repeats=repeats
        )
        sp["kernels"] = harvested
        return store.save_calibration(db)
