"""Profile-guided optimization (DESIGN.md S9): measured costs + warm caches.

Closes the loop from measurement to decision: calibration records map
host wall-clock back onto the analytical device model
(:mod:`repro.pgo.records`, :mod:`repro.pgo.calibrated`), and the
persistent tuning store (:mod:`repro.pgo.store`) lets a warm process skip
scheduling, wavefront analysis, bytecode compilation, and backend
autotuning. Everything activates via ``REPRO_TUNE_DIR``; without it the
stack behaves exactly as before.

:mod:`repro.pgo.harvest` (the measurement driver) is imported lazily by
callers — it pulls in the profiler and scheduler, which this package must
not load eagerly.
"""

from repro.pgo.calibrated import (
    CalibratedDeviceModel,
    default_device,
    device_token,
)
from repro.pgo.codecache import BytecodeCache
from repro.pgo.records import (
    DECAY,
    CalibrationDB,
    CostRecord,
    RobustTiming,
    robust_best,
    shape_class,
)
from repro.pgo.store import (
    TuneStore,
    default_store,
    graph_fingerprint,
    reset_default_stores,
)

__all__ = [
    "DECAY",
    "RobustTiming",
    "robust_best",
    "shape_class",
    "CostRecord",
    "CalibrationDB",
    "CalibratedDeviceModel",
    "default_device",
    "device_token",
    "BytecodeCache",
    "TuneStore",
    "default_store",
    "graph_fingerprint",
    "reset_default_stores",
]
