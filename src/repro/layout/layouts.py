"""Data-layout vocabulary for the fully-connected layers of LSTM RNNs.

The paper's data layout optimization is a single binary decision (Section
4.2): compute a fully-connected layer either as

* ``ROW_MAJOR``  — ``Y = X . W^T``  (framework default; output batch-major), or
* ``COL_MAJOR``  — ``Y^T = W . X^T`` (transposed; output hidden-major),

which are mathematically identical but differ in cache utilization and
runtime on real GPUs because both ``X`` ([B x H], wide) and ``W``
([4H x H], tall) are skewed matrices. The NP-hard general data-layout
problem collapses to this one bit for LSTM RNNs because every timestep
repeats the same GEMM dimensions.
"""

from __future__ import annotations

from enum import Enum


class Layout(Enum):
    """How a fully-connected layer's GEMM is issued to the device."""

    ROW_MAJOR = "row_major"  # Y   = X . W^T   (GEMM dims M=B,  N=4H, K=H)
    COL_MAJOR = "col_major"  # Y^T = W . X^T   (GEMM dims M=4H, N=B,  K=H)

    @property
    def transposed(self) -> bool:
        return self is Layout.COL_MAJOR

    def gemm_dims(self, batch_rows: int, out_units: int, in_units: int
                  ) -> tuple[int, int, int]:
        """Map logical FC dims to the (M, N, K) the device kernel sees."""
        if self is Layout.ROW_MAJOR:
            return batch_rows, out_units, in_units
        return out_units, batch_rows, in_units


class RnnDataLayout(Enum):
    """Layout of the sequence tensor fed to an RNN layer.

    ``TNC`` is time-major [T x B x H] (framework default after the mandatory
    time-major transpose); ``TCN`` is the paper's optimized [T x H x B]
    layout whose per-step slices feed COL_MAJOR GEMMs without extra copies.
    """

    TNC = "tnc"
    TCN = "tcn"

    @property
    def fc_layout(self) -> Layout:
        return Layout.ROW_MAJOR if self is RnnDataLayout.TNC else Layout.COL_MAJOR
