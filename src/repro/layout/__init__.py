"""Data layout optimization for LSTM fully-connected layers (DESIGN.md S8)."""

from repro.layout.layouts import Layout, RnnDataLayout

__all__ = ["Layout", "RnnDataLayout"]
