"""Parameter checkpointing: save/restore training state as ``.npz``.

Long NMT trainings (the paper trains to a target BLEU over hours) need
restartable state; this covers parameters, optimizer bookkeeping that
lives in numpy arrays, the trainer's clock, and the executor's
iteration counter (which seeds the dropout masks — without it a resumed
run replays step-0 masks and diverges from the uninterrupted run).

Writes are atomic: the archive lands in a same-directory temp file and
is ``os.replace``-d into place, so a crash mid-save leaves the previous
checkpoint intact instead of a truncated npz.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.train.optimizer import SGD, Adam
from repro.train.trainer import Trainer

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(path: str | pathlib.Path, trainer: Trainer) -> None:
    """Write parameters + optimizer state + clock to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.params.items():
        arrays[f"param/{name}"] = value
    opt = trainer.optimizer
    if isinstance(opt, SGD):
        for name, v in opt._velocity.items():
            arrays[f"opt.velocity/{name}"] = v
    elif isinstance(opt, Adam):
        for name, m in opt._m.items():
            arrays[f"opt.m/{name}"] = m
        for name, v in opt._v.items():
            arrays[f"opt.v/{name}"] = v
    meta = {
        "optimizer": opt.name,
        "optimizer_step": opt._step,
        "trainer_step": len(trainer.history),
        "samples": trainer._samples,
        "sim_seconds": trainer._sim_clock,
        # Dropout masks are seeded by the executor iteration (the global
        # step); resuming must continue the sequence, not replay it.
        "executor_iteration": trainer.executor.executor._iteration,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def load_checkpoint(path: str | pathlib.Path, trainer: Trainer) -> dict:
    """Restore state saved by :func:`save_checkpoint` into ``trainer``.

    The trainer must have been built with the same model/optimizer
    family; mismatches raise rather than silently training from garbage.
    """
    with np.load(pathlib.Path(path)) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode())
        if meta["optimizer"] != trainer.optimizer.name:
            raise ValueError(
                f"checkpoint has optimizer {meta['optimizer']!r}, trainer "
                f"uses {trainer.optimizer.name!r}"
            )
        saved_params = {
            key[len("param/"):]: data[key]
            for key in data.files if key.startswith("param/")
        }
        if set(saved_params) != set(trainer.params):
            missing = set(trainer.params) ^ set(saved_params)
            raise ValueError(f"parameter name mismatch: {sorted(missing)}")
        for name, value in saved_params.items():
            if value.shape != trainer.params[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint "
                    f"{value.shape} vs model {trainer.params[name].shape}"
                )
            trainer.params[name][...] = value

        opt = trainer.optimizer
        if isinstance(opt, SGD):
            opt._velocity = {
                key[len("opt.velocity/"):]: data[key].copy()
                for key in data.files if key.startswith("opt.velocity/")
            }
        elif isinstance(opt, Adam):
            opt._m = {
                key[len("opt.m/"):]: data[key].copy()
                for key in data.files if key.startswith("opt.m/")
            }
            opt._v = {
                key[len("opt.v/"):]: data[key].copy()
                for key in data.files if key.startswith("opt.v/")
            }
    opt._step = meta["optimizer_step"]
    trainer._samples = meta["samples"]
    trainer._sim_clock = meta["sim_seconds"]
    # Older checkpoints (pre executor_iteration) assumed one executor run
    # per trainer step, which holds for the plain Trainer.
    trainer.executor.executor._iteration = meta.get(
        "executor_iteration", meta["trainer_step"]
    )
    return meta
