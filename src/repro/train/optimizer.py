"""Optimizers: SGD (+momentum) and Adam, with global-norm gradient clipping.

The optimizer's state-copy count feeds the memory profiler's "Weights"
accounting (the paper folds parameters, gradients, and optimizer state into
one category).
"""

from __future__ import annotations

import math

import numpy as np


class Optimizer:
    """Base class; subclasses implement :meth:`_update_one`."""

    #: extra per-parameter arrays kept (profiler accounting)
    state_copies: float = 0.0
    name: str = "optimizer"

    def __init__(self, learning_rate: float, clip_norm: float | None = None):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm
        self._step = 0

    def update(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> float:
        """Apply one update in place; returns the pre-clip gradient norm."""
        self._step += 1
        norm = math.sqrt(
            sum(float(np.sum(g.astype(np.float64) ** 2)) for g in grads.values())
        )
        scale = 1.0
        if self.clip_norm is not None and norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
        for name, grad in grads.items():
            self._update_one(name, params[name], grad * scale)
        return norm

    def _update_one(self, name: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    name = "sgd"

    def __init__(
        self,
        learning_rate: float = 1.0,
        momentum: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        self.momentum = momentum
        self.state_copies = 1.0 if momentum else 0.0
        self.name = "momentum" if momentum else "sgd"
        self._velocity: dict[str, np.ndarray] = {}

    def _update_one(self, name, param, grad):
        if self.momentum:
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(param)
                self._velocity[name] = v
            v *= self.momentum
            v += grad
            grad = v
        param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam with bias correction."""

    name = "adam"
    state_copies = 2.0

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def _update_one(self, name, param, grad):
        m = self._m.setdefault(name, np.zeros_like(param))
        v = self._v.setdefault(name, np.zeros_like(param))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        m_hat = m / (1 - self.beta1 ** self._step)
        v_hat = v / (1 - self.beta2 ** self._step)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
