"""Training-quality metrics: perplexity and corpus BLEU.

Perplexity (lower is better) quantifies language-modeling quality; BLEU
(higher is better; >20 is "decent" per the paper) quantifies translation
quality on the validation set.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

Sentence = Sequence[int]


def perplexity(mean_cross_entropy: float) -> float:
    """exp(loss), clamped to avoid overflow on untrained models."""
    return math.exp(min(mean_cross_entropy, 30.0))


def _ngrams(sentence: Sentence, n: int) -> Counter:
    return Counter(
        tuple(sentence[i:i + n]) for i in range(len(sentence) - n + 1)
    )


def sentence_clip_counts(
    hypothesis: Sentence, reference: Sentence, n: int
) -> tuple[int, int]:
    """(clipped matches, total hypothesis n-grams) for one order."""
    hyp = _ngrams(hypothesis, n)
    ref = _ngrams(reference, n)
    matches = sum(min(count, ref[gram]) for gram, count in hyp.items())
    total = max(sum(hyp.values()), 0)
    return matches, total


def corpus_bleu(
    hypotheses: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-level BLEU in [0, 100] with brevity penalty.

    ``smooth`` adds one to every numerator/denominator (Lin & Och), keeping
    early-training scores finite instead of hard zero.
    """
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses vs {len(references)} references"
        )
    if not hypotheses:
        return 0.0

    matches = [0] * max_order
    totals = [0] * max_order
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_order + 1):
            m, t = sentence_clip_counts(hyp, ref, n)
            matches[n - 1] += m
            totals[n - 1] += t

    # Effective order: n-gram orders longer than every sentence contribute
    # no counts and are excluded from the geometric mean (sacrebleu-style),
    # so very short corpora still score sensibly.
    log_precision = 0.0
    effective_order = 0
    for m, t in zip(matches, totals):
        if t == 0:
            continue
        effective_order += 1
        if smooth:
            m, t = m + 1, t + 1
        if m == 0:
            return 0.0
        log_precision += math.log(m / t)
    if effective_order == 0:
        return 0.0
    log_precision /= effective_order

    if hyp_len == 0:
        return 0.0
    brevity = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * brevity * math.exp(log_precision)


def token_accuracy(
    predictions: Sequence[Sentence], labels: Sequence[Sentence],
    ignore: int = -1,
) -> float:
    """Fraction of non-padding tokens predicted exactly (teacher-forced)."""
    correct = 0
    total = 0
    for pred, lab in zip(predictions, labels):
        for p, l in zip(pred, lab):
            if l == ignore:
                continue
            total += 1
            correct += int(p == l)
    return correct / max(total, 1)
