"""Beam-search decoding for the NMT model.

Follows the standard toolkit construction (Sockeye/OpenNMT): the beam is
folded into the batch dimension, so one decoder-step graph of batch
``B * beam_size`` serves the whole search; states are re-gathered by
parent beam after every step. Scores are accumulated token log-probs with
optional length normalization; ``beam_size=1`` reduces exactly to greedy
search (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.models.nmt import (
    NmtConfig,
    build_decoder_step,
    build_encoder_inference,
)
from repro.nn import ParamStore
from repro.ops.softmax import log_softmax_array
from repro.runtime import GraphExecutor

_NEG_INF = np.float32(-1e30)


@dataclass(frozen=True)
class BeamHypothesis:
    """One finished (or forcibly terminated) candidate translation."""

    tokens: list[int]
    log_prob: float

    def normalized_score(self, alpha: float) -> float:
        """GNMT length normalization: logP / ((5+len)/(5+1))^alpha."""
        length = max(len(self.tokens), 1)
        penalty = ((5.0 + length) / 6.0) ** alpha
        return self.log_prob / penalty


class BeamSearchDecoder:
    """Batched beam search over a trained NMT parameter set."""

    def __init__(
        self,
        config: NmtConfig,
        store: ParamStore,
        beam_size: int = 5,
        length_penalty: float = 1.0,
        bos: int = 1,
        eos: int = 2,
        arena: Any | None = None,
        plan_cache: Any | None = None,
        threads: int | None = None,
        batch_gemms: bool | None = None,
    ) -> None:
        if beam_size < 1:
            raise ValueError("beam_size must be at least 1")
        self.config = config
        self.beam_size = beam_size
        self.length_penalty = length_penalty
        self.bos = bos
        self.eos = eos
        exec_kwargs = dict(arena=arena, plan_cache=plan_cache,
                           threads=threads, batch_gemms=batch_gemms)
        self._encoder = GraphExecutor(
            [build_encoder_inference(config, store)], **exec_kwargs
        )
        step_config = replace(
            config, batch_size=config.batch_size * beam_size
        )
        self._step = GraphExecutor(
            build_decoder_step(step_config, store).outputs, **exec_kwargs
        )

    def translate(
        self,
        src_tokens: np.ndarray,
        params: dict[str, np.ndarray],
        max_len: int | None = None,
    ) -> list[list[int]]:
        """Best hypothesis per sentence (EOS-trimmed token lists)."""
        hypotheses = self.translate_n_best(src_tokens, params, max_len)
        return [beams[0].tokens for beams in hypotheses]

    def translate_n_best(
        self,
        src_tokens: np.ndarray,
        params: dict[str, np.ndarray],
        max_len: int | None = None,
    ) -> list[list[BeamHypothesis]]:
        """All surviving hypotheses per sentence, best first."""
        cfg, beam = self.config, self.beam_size
        batch = cfg.batch_size
        rows = batch * beam
        max_len = max_len or cfg.tgt_len

        enc = self._encoder.run(
            {"infer_src_tokens": src_tokens}, params
        ).outputs[0]
        enc = np.repeat(enc, beam, axis=0)  # [B*K x T x H]

        att_hidden = np.zeros((rows, cfg.hidden_size), np.float32)
        states = [
            (np.zeros((rows, cfg.hidden_size), np.float32),
             np.zeros((rows, cfg.hidden_size), np.float32))
            for _ in range(cfg.decoder_layers)
        ]
        tokens = np.full((1, rows), self.bos, np.int64)
        # Only beam 0 of each sentence is alive initially (others would
        # duplicate it); dead beams carry -inf scores.
        scores = np.full((batch, beam), _NEG_INF, np.float32)
        scores[:, 0] = 0.0
        finished = np.zeros((batch, beam), bool)
        sequences: list[list[list[int]]] = [
            [[] for _ in range(beam)] for _ in range(batch)
        ]

        for _ in range(max_len):
            feeds = {
                "step_prev_token": tokens,
                "step_att_hidden": att_hidden,
                "step_encoder_states": enc,
            }
            for layer, (h, c) in enumerate(states):
                feeds[f"step_h{layer}"] = h
                feeds[f"step_c{layer}"] = c
            out = self._step.run(feeds, params).outputs
            logits, att_hidden = out[0], out[1]
            states = [
                (out[2 + 2 * i], out[3 + 2 * i])
                for i in range(cfg.decoder_layers)
            ]
            log_probs = log_softmax_array(logits).reshape(batch, beam, -1)
            vocab = log_probs.shape[-1]

            # Finished beams may only "extend" with EOS at zero cost.
            log_probs[finished] = _NEG_INF
            log_probs[finished, self.eos] = 0.0

            candidate = scores[:, :, None] + log_probs  # [B x K x V]
            flat = candidate.reshape(batch, beam * vocab)
            top = np.argpartition(flat, -beam, axis=1)[:, -beam:]
            # Order the winners best-first for determinism.
            order = np.argsort(-np.take_along_axis(flat, top, axis=1), axis=1)
            top = np.take_along_axis(top, order, axis=1)

            parents = top // vocab  # [B x K]
            words = top % vocab
            scores = np.take_along_axis(flat, top, axis=1)

            # Re-gather beam state by parent.
            gather = (np.arange(batch)[:, None] * beam + parents).reshape(-1)
            att_hidden = att_hidden[gather]
            states = [(h[gather], c[gather]) for h, c in states]
            enc = enc  # identical rows per sentence; no gather needed

            new_finished = np.zeros_like(finished)
            new_sequences: list[list[list[int]]] = [
                [None] * beam for _ in range(batch)
            ]
            for b in range(batch):
                for k in range(beam):
                    parent = int(parents[b, k])
                    word = int(words[b, k])
                    seq = list(sequences[b][parent])
                    was_finished = finished[b, parent]
                    if was_finished or word == self.eos:
                        new_finished[b, k] = True
                    else:
                        seq.append(word)
                    new_sequences[b][k] = seq
            sequences = new_sequences
            finished = new_finished
            if finished.all():
                break
            tokens = words.reshape(1, rows).astype(np.int64)

        results: list[list[BeamHypothesis]] = []
        for b in range(batch):
            beams = [
                BeamHypothesis(tokens=sequences[b][k],
                               log_prob=float(scores[b, k]))
                for k in range(beam)
            ]
            beams.sort(
                key=lambda h: -h.normalized_score(self.length_penalty)
            )
            results.append(beams)
        return results
