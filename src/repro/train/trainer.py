"""Training loop with curve recording and an MXNet-style speedometer.

Training *numerics* run on numpy; training *time* is accounted in
simulated GPU seconds (the per-iteration cost of the compiled graph on the
device model, plus a host-side update term), so time-axis comparisons —
"EcoRNN converges 1.5x faster in wall clock" — reflect the modeled GPU,
not this machine's CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.autodiff.training import TrainingGraph
from repro.gpumodel import DeviceModel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Arena, PlanCache, TrainingExecutor
from repro.train.metrics import perplexity
from repro.train.optimizer import Optimizer

#: host-side time per parameter element per update (optimizer arithmetic
#: overlaps poorly with GPU work in the paper-era frameworks)
_UPDATE_SECONDS_PER_PARAM = 2.0e-11


@dataclass
class TrainRecord:
    """One training step on the curves."""

    step: int
    samples_seen: int
    sim_seconds: float  # cumulative simulated wall clock
    loss: float
    perplexity: float
    grad_norm: float


@dataclass
class Speedometer:
    """Windowed samples/second readout (MXNet callback equivalent)."""

    window: int = 20
    _records: list[tuple[int, float]] = field(default_factory=list)

    def update(self, samples: int, sim_seconds: float) -> None:
        self._records.append((samples, sim_seconds))

    def throughput(self) -> float:
        recent = self._records[-self.window:]
        if len(recent) < 2:
            return 0.0
        samples = recent[-1][0] - recent[0][0]
        seconds = recent[-1][1] - recent[0][1]
        return samples / seconds if seconds > 0 else 0.0


class Trainer:
    """Drives iterations of one compiled training graph."""

    def __init__(
        self,
        graph: TrainingGraph,
        params: dict[str, np.ndarray],
        optimizer: Optimizer,
        device: DeviceModel | None = None,
        batch_size: int | None = None,
        arena: Arena | None = None,
        plan_cache: PlanCache | None = None,
        threads: int | None = None,
        batch_gemms: bool | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.optimizer = optimizer
        #: explicit metrics sink; falls back to the global registry (when
        #: enabled) so ``REPRO_METRICS=1`` instruments existing callers.
        self.metrics = metrics if metrics is not None else obs_metrics.registry()
        self.device = device or DeviceModel()
        self.executor = TrainingExecutor(
            graph,
            device=self.device,
            arena=arena,
            plan_cache=plan_cache,
            threads=threads,
            batch_gemms=batch_gemms,
        )
        self.batch_size = batch_size or _infer_batch(graph)
        num_params = sum(int(p.size) for p in params.values())
        cost = self.executor.simulate_cost()
        #: simulated GPU seconds per iteration (fixed for a static graph)
        self.iteration_seconds = (
            cost.sim_seconds + num_params * _UPDATE_SECONDS_PER_PARAM
        )
        self._kernel_busy = cost.sim_kernel_seconds / max(cost.sim_seconds, 1e-30)
        self.history: list[TrainRecord] = []
        self.speedometer = Speedometer()
        self._sim_clock = 0.0
        self._samples = 0

    @property
    def peak_bytes(self) -> int:
        return self.executor.peak_bytes

    def throughput(self) -> float:
        """Steady-state samples/second on the modeled device."""
        return self.batch_size / self.iteration_seconds

    def power_watts(self) -> float:
        return self.device.power_watts(self._kernel_busy)

    def step(self, feeds: Mapping[str, np.ndarray]) -> TrainRecord:
        with obs_trace.span(
            "train.step", "train", {"step": len(self.history) + 1}
        ):
            loss, grads, _ = self.executor.run(feeds, self.params)
            if not np.isfinite(loss):
                raise FloatingPointError(
                    f"loss diverged to {loss} at step {len(self.history)}"
                )
            grad_norm = self.optimizer.update(self.params, grads)
        self._sim_clock += self.iteration_seconds
        self._samples += self.batch_size
        record = TrainRecord(
            step=len(self.history) + 1,
            samples_seen=self._samples,
            sim_seconds=self._sim_clock,
            loss=loss,
            perplexity=perplexity(loss),
            grad_norm=grad_norm,
        )
        self.history.append(record)
        self.speedometer.update(self._samples, self._sim_clock)
        self._record_metrics(record)
        return record

    def _record_metrics(self, record: TrainRecord) -> None:
        """Stream one step's observations into the metrics sink (if any)."""
        reg = self.metrics
        if reg is None:
            return
        reg.counter("train.steps").inc()
        reg.gauge("train.samples_seen").set(record.samples_seen)
        reg.gauge("train.loss").set(record.loss)
        reg.histogram("train.grad_norm").observe(record.grad_norm)
        reg.gauge("train.throughput").set(self.speedometer.throughput())

    def run_epoch(self, batches: Iterable[Mapping[str, np.ndarray]]
                  ) -> list[TrainRecord]:
        return [self.step(feeds) for feeds in batches]


def _infer_batch(graph: TrainingGraph) -> int:
    """Batch size from the trailing dim of the first [T x B] placeholder."""
    for t in graph.placeholders.values():
        if len(t.shape) == 2:
            return t.shape[1]
    raise ValueError("cannot infer batch size; pass batch_size explicitly")
