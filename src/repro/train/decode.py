"""Greedy decoding for the NMT model (BLEU validation).

Builds the encoder-inference graph and a single decoder-step graph once
(sharing the training parameters through the model's :class:`ParamStore`),
then unrolls decoding in numpy — the way real toolkits run inference.
"""

from __future__ import annotations

import numpy as np

from repro.models.nmt import (
    NmtConfig,
    build_decoder_step,
    build_encoder_inference,
)
from repro.nn import ParamStore
from repro.runtime import GraphExecutor


class GreedyDecoder:
    """Greedy (argmax) decoder over a trained NMT parameter set."""

    def __init__(self, config: NmtConfig, store: ParamStore,
                 bos: int = 1, eos: int = 2) -> None:
        self.config = config
        self.bos = bos
        self.eos = eos
        self._encoder = GraphExecutor([build_encoder_inference(config, store)])
        step = build_decoder_step(config, store)
        self._step = GraphExecutor(step.outputs)

    def translate(
        self,
        src_tokens: np.ndarray,
        params: dict[str, np.ndarray],
        max_len: int | None = None,
    ) -> list[list[int]]:
        """``src_tokens`` is [T_src x B]; returns token lists (EOS-trimmed)."""
        cfg = self.config
        batch = cfg.batch_size
        max_len = max_len or cfg.tgt_len

        enc_states = self._encoder.run(
            {"infer_src_tokens": src_tokens}, params
        ).outputs[0]

        att_hidden = np.zeros((batch, cfg.hidden_size), np.float32)
        states = [
            (np.zeros((batch, cfg.hidden_size), np.float32),
             np.zeros((batch, cfg.hidden_size), np.float32))
            for _ in range(cfg.decoder_layers)
        ]
        tokens = np.full((1, batch), self.bos, np.int64)
        finished = np.zeros(batch, bool)
        outputs: list[list[int]] = [[] for _ in range(batch)]

        for _ in range(max_len):
            feeds = {
                "step_prev_token": tokens,
                "step_att_hidden": att_hidden,
                "step_encoder_states": enc_states,
            }
            for layer, (h, c) in enumerate(states):
                feeds[f"step_h{layer}"] = h
                feeds[f"step_c{layer}"] = c
            result = self._step.run(feeds, params).outputs
            logits, att_hidden = result[0], result[1]
            states = [
                (result[2 + 2 * i], result[3 + 2 * i])
                for i in range(cfg.decoder_layers)
            ]
            next_tokens = np.argmax(logits, axis=1)
            for b in range(batch):
                if finished[b]:
                    continue
                token = int(next_tokens[b])
                if token == self.eos:
                    finished[b] = True
                else:
                    outputs[b].append(token)
            if finished.all():
                break
            tokens = next_tokens.reshape(1, batch).astype(np.int64)
        return outputs
