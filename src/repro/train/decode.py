"""Greedy decoding and sequence scoring for the NMT model.

Builds the encoder-inference graph and a single decoder-step graph once
(sharing the training parameters through the model's :class:`ParamStore`),
then unrolls decoding in numpy — the way real toolkits run inference.

Both entry points are *batched* and row-independent: every kernel in the
inference graphs (GEMMs, LSTM gates, attention softmax, argmax) computes
each batch row from that row's inputs alone, so row ``b`` of a batch-``B``
run is bitwise-identical to the same request decoded in any other batch of
the same shape. The serving layer (:mod:`repro.serve`) leans on exactly
this property to coalesce concurrent requests into micro-batches without
changing anyone's answer.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.models.nmt import (
    NmtConfig,
    build_decoder_step,
    build_encoder_inference,
)
from repro.nn import ParamStore
from repro.ops.softmax import log_softmax_array
from repro.runtime import GraphExecutor


class GreedyDecoder:
    """Greedy (argmax) decoder over a trained NMT parameter set.

    ``arena``/``plan_cache``/``threads``/``batch_gemms`` plumb straight
    into the underlying :class:`GraphExecutor`\\ s so callers (the serving
    layer's per-bucket sessions, chiefly) can share one arena and one
    thread-safe plan cache across many decoders.
    """

    def __init__(self, config: NmtConfig, store: ParamStore,
                 bos: int = 1, eos: int = 2,
                 arena: Any | None = None,
                 plan_cache: Any | None = None,
                 threads: int | None = None,
                 batch_gemms: bool | None = None) -> None:
        self.config = config
        self.bos = bos
        self.eos = eos
        exec_kwargs = dict(arena=arena, plan_cache=plan_cache,
                           threads=threads, batch_gemms=batch_gemms)
        self._encoder = GraphExecutor(
            [build_encoder_inference(config, store)], **exec_kwargs
        )
        step = build_decoder_step(config, store)
        self._step = GraphExecutor(step.outputs, **exec_kwargs)

    def _run_encoder(self, src_tokens: np.ndarray,
                     params: dict[str, np.ndarray]) -> np.ndarray:
        return self._encoder.run(
            {"infer_src_tokens": src_tokens}, params
        ).outputs[0]

    def _initial_state(self):
        cfg = self.config
        batch = cfg.batch_size
        att_hidden = np.zeros((batch, cfg.hidden_size), np.float32)
        states = [
            (np.zeros((batch, cfg.hidden_size), np.float32),
             np.zeros((batch, cfg.hidden_size), np.float32))
            for _ in range(cfg.decoder_layers)
        ]
        return att_hidden, states

    def _run_step(self, tokens, att_hidden, states, enc_states, params):
        feeds = {
            "step_prev_token": tokens,
            "step_att_hidden": att_hidden,
            "step_encoder_states": enc_states,
        }
        for layer, (h, c) in enumerate(states):
            feeds[f"step_h{layer}"] = h
            feeds[f"step_c{layer}"] = c
        result = self._step.run(feeds, params).outputs
        logits, att_hidden = result[0], result[1]
        states = [
            (result[2 + 2 * i], result[3 + 2 * i])
            for i in range(self.config.decoder_layers)
        ]
        return logits, att_hidden, states

    def translate(
        self,
        src_tokens: np.ndarray,
        params: dict[str, np.ndarray],
        max_len: int | None = None,
    ) -> list[list[int]]:
        """``src_tokens`` is [T_src x B]; returns token lists (EOS-trimmed)."""
        cfg = self.config
        batch = cfg.batch_size
        max_len = max_len or cfg.tgt_len

        enc_states = self._run_encoder(src_tokens, params)
        att_hidden, states = self._initial_state()
        tokens = np.full((1, batch), self.bos, np.int64)
        finished = np.zeros(batch, bool)
        outputs: list[list[int]] = [[] for _ in range(batch)]

        for _ in range(max_len):
            logits, att_hidden, states = self._run_step(
                tokens, att_hidden, states, enc_states, params
            )
            next_tokens = np.argmax(logits, axis=1)
            for b in range(batch):
                if finished[b]:
                    continue
                token = int(next_tokens[b])
                if token == self.eos:
                    finished[b] = True
                else:
                    outputs[b].append(token)
            if finished.all():
                break
            tokens = next_tokens.reshape(1, batch).astype(np.int64)
        return outputs

    def score(
        self,
        src_tokens: np.ndarray,
        targets: Sequence[Sequence[int]],
        params: dict[str, np.ndarray],
    ) -> np.ndarray:
        """Teacher-forced log-probability of each target sequence.

        ``targets[b]`` is row ``b``'s token list (without BOS/EOS); the
        returned float64 array [B] accumulates ``log P(token)`` for every
        target token plus the terminating EOS. Row totals touch only that
        row's log-probs, so scores are batch-composition independent —
        the property the serving layer's SCORE request kind relies on.
        """
        cfg = self.config
        batch = cfg.batch_size
        if len(targets) != batch:
            raise ValueError(
                f"expected {batch} target rows, got {len(targets)}"
            )

        enc_states = self._run_encoder(src_tokens, params)
        att_hidden, states = self._initial_state()
        prev = np.full((1, batch), self.bos, np.int64)
        totals = np.zeros(batch)
        done = np.zeros(batch, bool)
        max_steps = max((len(t) for t in targets), default=0) + 1

        for t in range(max_steps):
            logits, att_hidden, states = self._run_step(
                prev, att_hidden, states, enc_states, params
            )
            logp = log_softmax_array(logits)
            nxt = np.full(batch, self.eos, np.int64)
            for b in range(batch):
                if done[b]:
                    continue
                target = (
                    int(targets[b][t]) if t < len(targets[b]) else self.eos
                )
                totals[b] += logp[b, target]
                if target == self.eos or t >= len(targets[b]):
                    done[b] = True
                nxt[b] = target
            if done.all():
                break
            prev = nxt.reshape(1, batch)
        return totals
