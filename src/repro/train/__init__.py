"""Training infrastructure (DESIGN.md S10)."""

from repro.train.beam import BeamHypothesis, BeamSearchDecoder
from repro.train.bucketed import BucketedTrainer
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.decode import GreedyDecoder
from repro.train.metrics import corpus_bleu, perplexity, token_accuracy
from repro.train.optimizer import SGD, Adam, Optimizer
from repro.train.trainer import Speedometer, Trainer, TrainRecord

__all__ = [
    "Optimizer", "SGD", "Adam",
    "perplexity", "corpus_bleu", "token_accuracy",
    "Trainer", "TrainRecord", "Speedometer",
    "GreedyDecoder",
    "BeamSearchDecoder",
    "BeamHypothesis",
    "BucketedTrainer",
    "save_checkpoint",
    "load_checkpoint",
]
