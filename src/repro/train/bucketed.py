"""Bucketed NMT training: one compiled graph per length bucket, shared
parameters (the MXNet BucketingModule pattern Sockeye trains with).

The Echo pass runs on *every* bucket graph — recomputation is a graph
property, so each shape gets its own rewrite — and the device-visible
footprint is the maximum over buckets (executors share the memory pool).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

import numpy as np

from repro.data.bucketing import BucketSpec
from repro.echo import EchoConfig, EchoPass
from repro.gpumodel import DeviceModel
from repro.models.nmt import NmtConfig, build_nmt
from repro.nn import ParamStore
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Arena, PlanCache
from repro.train.optimizer import Optimizer
from repro.train.trainer import TrainRecord, Trainer


class BucketedTrainer:
    """Dispatches batches to per-bucket training graphs.

    All buckets share one :class:`ParamStore` (hence one parameter set and
    one optimizer state); per-bucket trainers share the same params dict,
    so an update made through any bucket is visible to all.
    """

    def __init__(
        self,
        base_config: NmtConfig,
        buckets: tuple[BucketSpec, ...],
        optimizer: Optimizer,
        echo: bool = False,
        echo_config: EchoConfig | None = None,
        device: DeviceModel | None = None,
        threads: int | None = None,
        batch_gemms: bool | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not buckets:
            raise ValueError("need at least one bucket")
        self.buckets = buckets
        self.metrics = metrics
        if device is None:
            # Calibrated when a tuning store has coverage; and since the
            # shared PlanCache below attaches the same store, construction
            # is also the ahead-of-time load point — every bucket's
            # schedule, wavefront layout, and closure bytecode comes from
            # disk on a warm start.
            from repro.pgo.calibrated import default_device

            device = default_device()
        self.device = device
        store = ParamStore()
        self.params: dict[str, np.ndarray] | None = None
        self._trainers: dict[BucketSpec, Trainer] = {}
        self.echo_reports = {}
        #: one arena + plan cache shared by every bucket's executor, the
        #: host-side analogue of "executors share the memory pool"
        self.arena = Arena()
        self.plan_cache = PlanCache()

        for bucket in buckets:
            cfg = replace(
                base_config, src_len=bucket.src_len, tgt_len=bucket.tgt_len
            )
            model = build_nmt(cfg, store=store)
            if echo:
                self.echo_reports[bucket] = EchoPass(
                    echo_config, self.device, plan_cache=self.plan_cache
                ).run(model.graph)
            if self.params is None:
                self.params = store.initialize()
            # Buckets share the arena AND the thread config: the plan cache
            # keys compiled plans by both, so every bucket's wavefront plan
            # overlays the same storage and the same worker pool.
            self._trainers[bucket] = Trainer(
                model.graph,
                self.params,
                optimizer,
                device=self.device,
                batch_size=cfg.batch_size,
                arena=self.arena,
                plan_cache=self.plan_cache,
                threads=threads,
                batch_gemms=batch_gemms,
                metrics=metrics,
            )
        self.store = store
        self.history: list[TrainRecord] = []

    @property
    def peak_bytes(self) -> int:
        """Device footprint: the largest bucket's plan (pooled executors)."""
        return max(t.peak_bytes for t in self._trainers.values())

    def trainer_for(self, bucket: BucketSpec) -> Trainer:
        try:
            return self._trainers[bucket]
        except KeyError:
            raise ValueError(f"unknown bucket {bucket}") from None

    def step(
        self, bucket: BucketSpec, feeds: Mapping[str, np.ndarray]
    ) -> TrainRecord:
        record = self.trainer_for(bucket).step(feeds)
        self.history.append(record)
        return record

    def mean_iteration_seconds(self) -> float:
        """Average per-bucket iteration time (uniform bucket mix)."""
        times = [t.iteration_seconds for t in self._trainers.values()]
        return sum(times) / len(times)
