"""Operator base class and registry.

Every operator in the library subclasses :class:`Op` and registers a single
stateless instance. Besides the usual framework triple (shape inference,
numpy kernel, symbolic gradient), each op also exposes the *cost hooks* the
Echo pass and the GPU model need:

* ``flops`` / ``bytes_accessed`` feed the roofline kernel-time estimate;
* ``workspace_bytes`` is the transient scratch a kernel needs (the paper's
  "workspace" memory category);
* ``launch_count`` models how many CUDA kernels the framework emits for the
  op (the unfused "Default" LSTM backend emits many — the paper's Figure 7);
* ``recompute_cheap`` marks ops Echo may mirror into the backward pass
  (elementwise / activation / layout ops — everything but heavy GEMMs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.graph.node import Node, Tensor, TensorSpec

if TYPE_CHECKING:  # pragma: no cover
    pass


class OpError(RuntimeError):
    """Raised for invalid operator construction or execution."""


class Op:
    """Base class of all graph operators. Subclasses are singletons."""

    #: unique operator name used in the registry and in profiles
    name: str = "op"
    #: whether the Echo pass may mirror this op into the backward pass
    recompute_cheap: bool = False
    #: whether :meth:`compute_into` avoids allocating its outputs (the
    #: compiled executor only routes arena buffers to ops that opt in)
    supports_out: bool = False
    #: whether the compiled plan's elementwise fusion pass may absorb this
    #: op into a single-buffer chain (single-output elementwise ops only)
    fusion_eligible: bool = False
    #: input positions whose buffer may alias the output buffer when
    #: :meth:`compute_into` runs (element i of the output depends only on
    #: element i of these inputs); fusion chains only thread the
    #: accumulator through these positions
    inplace_operands: tuple[int, ...] = ()
    #: whether :meth:`compute` may return a view of an input (reshape,
    #: expand_dims) — such outputs share their input's storage and the
    #: compiled plan keeps the underlying buffer alive for both
    may_alias: bool = False

    # -- graph-construction interface --------------------------------------

    def num_outputs(self, node: Node) -> int:
        return 1

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        """Compute output specs from ``node.inputs`` and ``node.attrs``."""
        raise NotImplementedError

    def gradient(
        self, node: Node, out_grads: Sequence[Tensor | None]
    ) -> Sequence[Tensor | None]:
        """Build gradient expressions for each input of ``node``.

        ``out_grads[i]`` is the gradient flowing into output ``i`` (``None``
        when that output does not influence the loss). Return one entry per
        input; ``None`` marks non-differentiable inputs.
        """
        raise OpError(f"op '{self.name}' is not differentiable")

    # -- execution interface ------------------------------------------------

    def compute(
        self, node: Node, inputs: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Run the numpy kernel; must return one array per output."""
        raise NotImplementedError

    def compute_into(
        self,
        node: Node,
        inputs: Sequence[np.ndarray],
        outs: Sequence[np.ndarray],
    ) -> None:
        """Run the kernel writing results into pre-allocated ``outs``.

        Must be bitwise-identical to :meth:`compute`. The generic fallback
        materializes :meth:`compute`'s results first and copies, which is
        always alias-safe (inputs are fully read before any write);
        subclasses that set ``supports_out`` override it with a
        zero-allocation path.
        """
        results = self.compute(node, inputs)
        for out, arr in zip(outs, results):
            if out is not arr:
                np.copyto(out, arr, casting="unsafe")

    # -- cost hooks ----------------------------------------------------------

    def flops(self, node: Node) -> int:
        """Floating-point operations; default: one per output element."""
        return sum(s.num_elements for s in node.out_specs)

    def bytes_accessed(self, node: Node) -> int:
        """DRAM bytes touched assuming no cache reuse (inputs + outputs)."""
        total = sum(s.nbytes for s in node.out_specs)
        total += sum(t.nbytes for t in node.inputs)
        return total

    def workspace_bytes(self, node: Node) -> int:
        """Transient scratchpad bytes the kernel needs while running."""
        return 0

    def launch_count(self, node: Node) -> int:
        """Number of GPU kernels the framework launches for this op."""
        return 1

    def __repr__(self) -> str:
        return f"<op {self.name}>"


_REGISTRY: dict[str, Op] = {}


def register(op: Op) -> Op:
    """Register a singleton op instance; returns it for assignment."""
    if op.name in _REGISTRY:
        raise OpError(f"duplicate op registration: {op.name!r}")
    _REGISTRY[op.name] = op
    return op


def get_op(name: str) -> Op:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OpError(f"unknown op {name!r}") from None


def registered_ops() -> dict[str, Op]:
    """A copy of the registry (name -> singleton instance)."""
    return dict(_REGISTRY)
