"""Human-readable graph dumps and summaries (debugging aids).

``graph_summary`` is what the examples print; ``format_graph`` is the
full node-by-node listing (MXNet's ``print(sym.debug_str())`` analog).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph.node import Node, Stage, Tensor
from repro.graph.traversal import topo_order


@dataclass(frozen=True)
class GraphSummary:
    """Aggregate statistics of a graph."""

    num_nodes: int
    num_edges: int
    by_stage: dict[str, int]
    by_op: dict[str, int]
    by_scope: dict[str, int]
    total_output_bytes: int

    def format(self, top_k: int = 8) -> str:
        lines = [
            f"graph: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.total_output_bytes / 2**20:.1f} MiB of node outputs"
        ]
        stages = ", ".join(f"{k}={v}" for k, v in sorted(self.by_stage.items()))
        lines.append(f"  stages: {stages}")
        lines.append("  top ops:")
        for name, count in Counter(self.by_op).most_common(top_k):
            lines.append(f"    {name:<24} x{count}")
        if self.by_scope:
            lines.append("  scopes:")
            for scope_name, count in sorted(
                self.by_scope.items(), key=lambda kv: -kv[1]
            )[:top_k]:
                lines.append(f"    {scope_name or '(root)':<24} x{count}")
        return "\n".join(lines)


def summarize(outputs: Iterable[Tensor]) -> GraphSummary:
    """Summary statistics for all nodes reachable from ``outputs``."""
    nodes = topo_order(outputs)
    by_stage = Counter(n.stage.value for n in nodes)
    by_op = Counter(n.op.name for n in nodes)
    by_scope = Counter(n.scope.split("/")[0] for n in nodes)
    edges = sum(len(n.inputs) for n in nodes)
    nbytes = sum(s.nbytes for n in nodes for s in n.out_specs)
    return GraphSummary(
        num_nodes=len(nodes),
        num_edges=edges,
        by_stage=dict(by_stage),
        by_op=dict(by_op),
        by_scope=dict(by_scope),
        total_output_bytes=nbytes,
    )


def format_graph(
    outputs: Iterable[Tensor],
    max_nodes: int | None = None,
    stages: Sequence[Stage] | None = None,
) -> str:
    """Node-by-node listing in topological order.

    ``stages`` filters (e.g. only ``Stage.RECOMPUTE`` to inspect what Echo
    mirrored); ``max_nodes`` truncates long graphs with an ellipsis line.
    """
    nodes = topo_order(outputs)
    if stages is not None:
        wanted = set(stages)
        nodes = [n for n in nodes if n.stage in wanted]
    lines = []
    shown = nodes if max_nodes is None else nodes[:max_nodes]
    for node in shown:
        lines.append(_format_node(node))
    if max_nodes is not None and len(nodes) > max_nodes:
        lines.append(f"... ({len(nodes) - max_nodes} more nodes)")
    return "\n".join(lines)


def _format_node(node: Node) -> str:
    ins = ", ".join(t.short_name for t in node.inputs)
    outs = " ".join(
        "x".join(str(d) for d in s.shape) or "scalar" for s in node.out_specs
    )
    stage = "" if node.stage is Stage.FORWARD else f" [{node.stage.value}]"
    scope_tag = f" @{node.scope}" if node.scope else ""
    return f"{node.name}{stage}{scope_tag} = {node.op.name}({ins}) -> {outs}"
