"""Core dataflow-graph data structures.

The IR mirrors what Echo needs from a deep-learning framework's graph layer
(NNVM in the paper's MXNet integration): typed multi-output nodes, explicit
producer/consumer edges, a *stage* tag separating forward, backward and
recompute (mirrored) nodes, and a *scope* tag used by the profilers to
attribute memory and runtime to model components (embedding / rnn /
attention / output), as the paper's breakdown figures do.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.graph.op import Op


class Stage(Enum):
    """Which phase of a training iteration a node executes in.

    ``RECOMPUTE`` marks nodes mirrored by the Echo pass: copies of forward
    nodes that re-execute during backpropagation so their original outputs
    need not be stashed across the forward/backward boundary.
    """

    FORWARD = "forward"
    BACKWARD = "backward"
    RECOMPUTE = "recompute"


@dataclass(frozen=True)
class TensorSpec:
    """Static shape and dtype of one node output."""

    shape: tuple[int, ...]
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float32))

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if any(d < 0 for d in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.itemsize

    @property
    def rank(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"TensorSpec({dims}:{self.dtype.name})"


class _ScopeState(threading.local):
    """Thread-local stack of profiling scopes (e.g. 'nmt/attention')."""

    def __init__(self) -> None:
        self.stack: list[str] = []


_SCOPES = _ScopeState()
_NODE_COUNTER = itertools.count()

#: callbacks invoked on every freshly constructed node (e.g. the manual
#: recompute annotation in repro.echo.manual). Kept explicit rather than
#: monkeypatching the constructor.
_NODE_HOOKS: list = []


def register_node_hook(hook) -> None:
    """Register ``hook(node)`` to run after every Node construction."""
    if hook not in _NODE_HOOKS:
        _NODE_HOOKS.append(hook)


class scope:
    """Context manager stamping nodes created inside it with a scope path.

    Scopes nest with ``/`` separators and are purely metadata: they drive the
    by-layer-type breakdowns of the memory and runtime profilers.

    >>> with scope("encoder"):
    ...     with scope("rnn"):
    ...         pass  # nodes created here get scope "encoder/rnn"
    """

    def __init__(self, name: str) -> None:
        if "/" in name:
            raise ValueError("scope segments may not contain '/'")
        self._name = name

    def __enter__(self) -> "scope":
        _SCOPES.stack.append(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        _SCOPES.stack.pop()


def current_scope() -> str:
    """Return the active scope path, '' when outside any scope."""
    return "/".join(_SCOPES.stack)


class Node:
    """One operator instance in the dataflow graph.

    Nodes are immutable once created except for Echo's rewrite bookkeeping
    (``mirror_of``). Identity (``uid``) is a global monotonically increasing
    sequence number which also serves as the default scheduling priority:
    creation order is program order.
    """

    __slots__ = (
        "uid",
        "op",
        "inputs",
        "attrs",
        "name",
        "stage",
        "scope",
        "out_specs",
        "mirror_of",
        "priority",
    )

    def __init__(
        self,
        op: "Op",
        inputs: Iterable["Tensor"],
        attrs: dict[str, Any] | None = None,
        name: str | None = None,
        stage: Stage = Stage.FORWARD,
    ) -> None:
        self.uid: int = next(_NODE_COUNTER)
        self.op = op
        self.inputs: tuple[Tensor, ...] = tuple(inputs)
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.name: str = name or f"{op.name}_{self.uid}"
        self.stage: Stage = stage
        self.scope: str = current_scope()
        #: for RECOMPUTE nodes, the forward node this one mirrors
        self.mirror_of: Node | None = None
        #: scheduling priority; creation order by default. The Echo rewrite
        #: lowers mirrored nodes' priority to just below their first backward
        #: consumer so they run as late as possible (minimal stash lifetime).
        self.priority: float = float(self.uid)
        self.out_specs: tuple[TensorSpec, ...] = tuple(op.infer_specs(self))
        if len(self.out_specs) != op.num_outputs(self):
            raise RuntimeError(
                f"op {op.name} declared {op.num_outputs(self)} outputs but "
                f"inferred {len(self.out_specs)} specs"
            )
        for hook in _NODE_HOOKS:
            hook(self)

    # -- convenience -------------------------------------------------------

    def out(self, index: int = 0) -> "Tensor":
        """Symbolic handle to the ``index``-th output of this node."""
        if not 0 <= index < len(self.out_specs):
            raise IndexError(f"{self.name} has {len(self.out_specs)} outputs")
        return Tensor(self, index)

    @property
    def outputs(self) -> tuple["Tensor", ...]:
        return tuple(Tensor(self, i) for i in range(len(self.out_specs)))

    def __repr__(self) -> str:
        ins = ", ".join(t.short_name for t in self.inputs)
        outs = ", ".join(repr(s) for s in self.out_specs)
        tag = "" if self.stage is Stage.FORWARD else f" [{self.stage.value}]"
        return f"<{self.name}{tag} = {self.op.name}({ins}) -> {outs}>"


class Tensor:
    """A symbolic reference to output ``index`` of ``node``.

    This is the user-facing value type of the graph builder API: the builder
    functions in :mod:`repro.ops` accept and return ``Tensor``s. Arithmetic
    operators are wired up lazily (see ``repro.ops.overloads``) to avoid an
    import cycle between the IR and the operator library.
    """

    __slots__ = ("node", "index")

    def __init__(self, node: Node, index: int = 0) -> None:
        self.node = node
        self.index = index

    @property
    def spec(self) -> TensorSpec:
        return self.node.out_specs[self.index]

    @property
    def shape(self) -> tuple[int, ...]:
        return self.spec.shape

    @property
    def dtype(self) -> np.dtype:
        return self.spec.dtype

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity of the value this reference denotes."""
        return (self.node.uid, self.index)

    @property
    def short_name(self) -> str:
        if len(self.node.out_specs) == 1:
            return self.node.name
        return f"{self.node.name}:{self.index}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Tensor):
            return self.key == other.key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"Tensor({self.short_name}, {self.spec!r})"

    # Arithmetic overloads are installed by repro.ops.overloads at import
    # time of the ops package; stubs here give a clear error otherwise.
    def _no_ops(self, *_args: object) -> "Tensor":
        raise RuntimeError(
            "tensor operator overloads require 'import repro.ops' first"
        )

    __add__ = __radd__ = __sub__ = __rsub__ = _no_ops
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _no_ops
    __neg__ = __matmul__ = __pow__ = _no_ops
