"""Shape arithmetic helpers shared by operator shape inference."""

from __future__ import annotations

Shape = tuple[int, ...]


class ShapeError(ValueError):
    """Raised when operand shapes are incompatible."""


def broadcast_shapes(a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcast of two static shapes."""
    out: list[int] = []
    ra, rb = len(a), len(b)
    for i in range(max(ra, rb)):
        da = a[ra - 1 - i] if i < ra else 1
        db = b[rb - 1 - i] if i < rb else 1
        if da == db:
            out.append(da)
        elif da == 1:
            out.append(db)  # note: 1 broadcasts to 0 (empty tensors)
        elif db == 1:
            out.append(da)
        else:
            raise ShapeError(f"cannot broadcast {a} with {b}")
    return tuple(reversed(out))


def num_elements(shape: Shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def normalize_axis(axis: int, rank: int) -> int:
    """Map a possibly-negative axis into [0, rank)."""
    if not -rank <= axis < rank:
        raise ShapeError(f"axis {axis} out of range for rank {rank}")
    return axis % rank


def reduced_shape(shape: Shape, axis: int | None, keepdims: bool) -> Shape:
    """Output shape of a reduction over ``axis`` (None = all axes)."""
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    ax = normalize_axis(axis, len(shape))
    if keepdims:
        return tuple(1 if i == ax else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i != ax)
