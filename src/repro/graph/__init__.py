"""Dataflow-graph IR: nodes, tensors, operators, traversal.

This is the substrate layer standing in for MXNet's NNVM graph in the
paper's integration (DESIGN.md S1).
"""

from repro.graph.node import (
    Node,
    Stage,
    Tensor,
    TensorSpec,
    current_scope,
    scope,
)
from repro.graph.op import Op, OpError, get_op, register, registered_ops
from repro.graph.shapes import ShapeError, broadcast_shapes
from repro.graph.printing import GraphSummary, format_graph, summarize
from repro.graph.traversal import (
    ancestors,
    consumers_map,
    dependency_levels,
    topo_order,
)

__all__ = [
    "Node",
    "Stage",
    "Tensor",
    "TensorSpec",
    "scope",
    "current_scope",
    "Op",
    "OpError",
    "register",
    "get_op",
    "registered_ops",
    "ShapeError",
    "broadcast_shapes",
    "topo_order",
    "consumers_map",
    "ancestors",
    "dependency_levels",
    "summarize",
    "format_graph",
    "GraphSummary",
]
