"""Topological traversal utilities over the node IR."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from repro.graph.node import Node, Tensor


def topo_order(outputs: Iterable[Tensor]) -> list[Node]:
    """All nodes reachable from ``outputs``, producers before consumers.

    DFS postorder — always a valid topological order, deterministic given
    the input order. Scheduling for execution (which interleaves mirrored
    recompute nodes into the backward pass) is done separately by
    :func:`repro.runtime.scheduler.schedule`.
    """
    visited: set[int] = set()
    order: list[Node] = []
    # Iterative DFS: recursion depth would scale with sequence length x
    # layers and overflow Python's stack on deep RNN graphs.
    roots = sorted({t.node.uid: t.node for t in outputs}.values(),
                   key=lambda n: n.uid)
    for root in roots:
        if root.uid in visited:
            continue
        stack: list[tuple[Node, int]] = [(root, 0)]
        visited.add(root.uid)
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(node.inputs):
                stack.append((node, child_idx + 1))
                child = node.inputs[child_idx].node
                if child.uid not in visited:
                    visited.add(child.uid)
                    stack.append((child, 0))
            else:
                order.append(node)
    return order


def consumers_map(nodes: Iterable[Node]) -> dict[tuple[int, int], list[Node]]:
    """Map each tensor key -> list of consuming nodes (schedule order)."""
    out: dict[tuple[int, int], list[Node]] = defaultdict(list)
    for node in nodes:
        for t in node.inputs:
            out[t.key].append(node)
    return dict(out)


def dependency_levels(nodes: Iterable[Node]) -> dict[int, int]:
    """Longest-path depth of each node over the value-dependence edges.

    Maps ``node.uid`` to its level: sources sit at level 0 and every node
    sits one past its deepest input producer. Nodes sharing a level are
    mutually independent through dataflow — the graph-level wavefronts the
    compiled executor's parallel schedule is built on (the runtime variant,
    :func:`repro.runtime.wavefront.analyze_wavefronts`, additionally
    accounts for storage hazards and stage barriers over the *lowered*
    stream). ``nodes`` must be topologically ordered; producers outside
    the iterable are treated as already-available level-(-1) sources.
    """
    level: dict[int, int] = {}
    for node in nodes:
        level[node.uid] = 1 + max(
            (level.get(t.node.uid, -1) for t in node.inputs), default=-1
        )
    return level


def ancestors(
    tensors: Iterable[Tensor],
    stop: Callable[[Tensor], bool] | None = None,
) -> set[int]:
    """uids of all producer nodes transitively reachable from ``tensors``.

    ``stop(t)`` prunes the walk: when true, ``t.node`` is included but its
    own inputs are not explored (used by Echo to stop at checkpoints).
    """
    seen: set[int] = set()
    stack = list(tensors)
    while stack:
        t = stack.pop()
        node = t.node
        if node.uid in seen:
            continue
        seen.add(node.uid)
        if stop is not None and stop(t):
            continue
        stack.extend(node.inputs)
    return seen
