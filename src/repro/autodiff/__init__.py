"""Reverse-mode autodiff producing explicit backward graphs (DESIGN.md S3)."""

from repro.autodiff.grad import GradientError, build_gradients
from repro.autodiff.training import TrainingGraph, compile_training

__all__ = ["build_gradients", "GradientError", "TrainingGraph", "compile_training"]
