"""Reverse-mode automatic differentiation over the graph IR.

``build_gradients`` constructs an explicit backward graph (new nodes tagged
``Stage.BACKWARD``) whose nodes reference forward tensors directly. Those
references are what create *feature maps*: any forward tensor consumed by a
backward node must survive the forward/backward boundary — the memory
category the paper shows dominating LSTM RNN training footprint, and the
one the Echo pass attacks.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from repro.graph import Stage, Tensor, topo_order
from repro.graph.node import _SCOPES
from repro.ops.elementwise import add
from repro.ops.source import constant


class GradientError(RuntimeError):
    """Raised when differentiation is impossible (e.g. non-scalar loss)."""


@contextlib.contextmanager
def _forced_scope(path: str) -> Iterator[None]:
    """Temporarily replace the scope stack so gradient nodes inherit the
    scope of the forward node they differentiate (profilers group on it)."""
    saved = _SCOPES.stack
    _SCOPES.stack = [s for s in path.split("/") if s]
    try:
        yield
    finally:
        _SCOPES.stack = saved


def build_gradients(
    loss: Tensor, wrt: Sequence[Tensor]
) -> dict[tuple[int, int], Tensor | None]:
    """Differentiate scalar ``loss`` w.r.t. each tensor in ``wrt``.

    Returns a map from ``tensor.key`` to its gradient tensor (``None`` when
    the loss does not depend on it). All newly created nodes are tagged
    ``Stage.BACKWARD``.
    """
    if loss.shape != ():
        raise GradientError(f"loss must be scalar, got shape {loss.shape}")

    forward_order = topo_order([loss])
    forward_uids = {n.uid for n in forward_order}

    grad_map: dict[tuple[int, int], Tensor] = {}

    def accumulate(key: tuple[int, int], grad: Tensor) -> None:
        existing = grad_map.get(key)
        grad_map[key] = grad if existing is None else add(existing, grad)

    seed = constant(np.ones((), dtype=loss.dtype), name="dLoss")
    grad_map[loss.key] = seed

    for node in reversed(forward_order):
        out_grads = [
            grad_map.get((node.uid, i)) for i in range(len(node.out_specs))
        ]
        if all(g is None for g in out_grads) or not node.inputs:
            continue
        with _forced_scope(node.scope):
            in_grads = node.op.gradient(node, out_grads)
        if len(in_grads) != len(node.inputs):
            raise GradientError(
                f"op {node.op.name} returned {len(in_grads)} gradients for "
                f"{len(node.inputs)} inputs"
            )
        for tensor, grad in zip(node.inputs, in_grads):
            if grad is None:
                continue
            if grad.shape != tensor.shape:
                raise GradientError(
                    f"gradient shape {grad.shape} != input shape "
                    f"{tensor.shape} for op {node.op.name}"
                )
            accumulate(tensor.key, grad)

    result: dict[tuple[int, int], Tensor | None] = {
        t.key: grad_map.get(t.key) for t in wrt
    }

    # Tag every node that is not part of the forward graph as BACKWARD.
    grads_present = [g for g in result.values() if g is not None]
    for node in topo_order(grads_present):
        if node.uid not in forward_uids:
            node.stage = Stage.BACKWARD
    return result
