"""Compiled training graphs: loss + parameter gradients as one dataflow graph.

A :class:`TrainingGraph` is the unit the rest of the system operates on —
the scheduler orders it, the allocator plans it, the profilers break it
down, and the Echo pass rewrites it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autodiff.grad import GradientError, build_gradients
from repro.graph import Node, Tensor, topo_order


@dataclass
class TrainingGraph:
    """A forward+backward graph for one training iteration."""

    loss: Tensor
    placeholders: dict[str, Tensor]
    params: dict[str, Tensor]
    grads: dict[str, Tensor]
    #: additional tensors to keep alive and return (e.g. decoder outputs)
    extra_outputs: dict[str, Tensor] = field(default_factory=dict)

    @property
    def outputs(self) -> list[Tensor]:
        """Every tensor that must survive to the end of the iteration."""
        return [self.loss, *self.grads.values(), *self.extra_outputs.values()]

    def nodes(self) -> list[Node]:
        """All nodes of the graph in a valid topological order."""
        return topo_order(self.outputs)

    def clone_for_rewrite(self) -> "TrainingGraph":
        """Shallow copy; Echo rewrites mutate node priorities/inputs of
        backward nodes, so benchmarks wanting a pristine graph rebuild it."""
        return TrainingGraph(
            loss=self.loss,
            placeholders=dict(self.placeholders),
            params=dict(self.params),
            grads=dict(self.grads),
            extra_outputs=dict(self.extra_outputs),
        )


def compile_training(
    loss: Tensor,
    params: dict[str, Tensor],
    placeholders: dict[str, Tensor],
    extra_outputs: dict[str, Tensor] | None = None,
) -> TrainingGraph:
    """Differentiate ``loss`` w.r.t. every parameter and package the result.

    Parameters the loss does not depend on raise: silently-frozen weights
    are a modeling bug, not a configuration.
    """
    grad_map = build_gradients(loss, list(params.values()))
    grads: dict[str, Tensor] = {}
    for name, var in params.items():
        grad = grad_map[var.key]
        if grad is None:
            raise GradientError(f"parameter {name!r} does not affect the loss")
        grads[name] = grad
    return TrainingGraph(
        loss=loss,
        placeholders=dict(placeholders),
        params=dict(params),
        grads=grads,
        extra_outputs=dict(extra_outputs or {}),
    )
