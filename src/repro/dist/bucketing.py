"""Gradient bucketing: flatten per-parameter grads into ring transfers.

Reducing each parameter gradient as its own collective would pay the
ring's latency term once per parameter; packing *everything* into one
flat buffer would serialize communication behind the full backward
pass. Buckets are the standard middle ground: parameters are assigned —
in parameter order, greedily, capped at ``bucket_bytes`` — to flat
float buffers, and each bucket becomes one chunked ring all-reduce that
can launch as soon as the *last* gradient it covers is produced, while
the rest of backward is still executing (see
:class:`~repro.dist.trainer.DistributedTrainer`'s level-completion
hook).

Bitwise note: packing is pure data movement. Concatenating gradients
into a bucket, ring-reducing the bucket, and slicing the results back
out performs exactly the same elementwise additions in exactly the same
order as reducing each parameter alone — chunk and bucket boundaries
cannot move a float across an addition. The single-rank reference
therefore reduces per-parameter and still matches bitwise.

The plan is deterministic from (names, specs, bucket_bytes) alone and
:meth:`GradBucketPlan.fingerprint` digests it with sha256; ranks
all-gather fingerprints at startup so a layout divergence (mismatched
model builds, different bucket caps) is caught before the first step
rather than surfacing as garbage numerics. The DS5xx analyzer family
(:mod:`repro.analysis.distcheck`) statically re-derives the coverage
invariants: every trainable parameter reduced exactly once, segments
disjoint and in-bounds, layouts consistent across ranks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "BucketSegment",
    "GradBucket",
    "GradBucketPlan",
    "plan_grad_buckets",
]

#: default bucket cap — a few LSTM-sized weight matrices per transfer
DEFAULT_BUCKET_BYTES = 1 << 20


@dataclass(frozen=True)
class BucketSegment:
    """One parameter's slice of a bucket's flat buffer."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int  # element offset into the bucket

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1


@dataclass(frozen=True)
class GradBucket:
    """One flat reduction unit: a run of parameter-order segments."""

    index: int
    dtype: str
    segments: tuple[BucketSegment, ...]

    @property
    def elements(self) -> int:
        return sum(s.size for s in self.segments)

    @property
    def nbytes(self) -> int:
        return self.elements * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class GradBucketPlan:
    """The full bucket layout for one parameter set."""

    buckets: tuple[GradBucket, ...]
    bucket_bytes: int

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(
            seg.name for bucket in self.buckets for seg in bucket.segments
        )

    def fingerprint(self) -> str:
        """Stable digest of the layout; equal across ranks iff the plans
        agree segment for segment (names, shapes, dtypes, offsets)."""
        digest = hashlib.sha256()
        digest.update(str(self.bucket_bytes).encode())
        for bucket in self.buckets:
            digest.update(f"|B{bucket.index}:{bucket.dtype}".encode())
            for seg in bucket.segments:
                digest.update(
                    f"|{seg.name}:{seg.shape}:{seg.dtype}:{seg.offset}".encode()
                )
        return digest.hexdigest()

    # -- packing -------------------------------------------------------------

    def flatten(
        self, bucket: GradBucket, grads: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Copy the bucket's gradients into one flat buffer."""
        flat = np.empty(bucket.elements, dtype=np.dtype(bucket.dtype))
        for seg in bucket.segments:
            grad = grads[seg.name]
            if tuple(grad.shape) != seg.shape:
                raise ValueError(
                    f"gradient {seg.name!r} has shape {grad.shape}, "
                    f"bucket plan says {seg.shape}"
                )
            flat[seg.offset:seg.offset + seg.size] = grad.reshape(-1)
        return flat

    def unflatten(
        self, bucket: GradBucket, flat: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Slice reduced gradients back out of a bucket buffer.

        Returned arrays are views into ``flat`` — the optimizer consumes
        them immediately and never writes gradients in place.
        """
        return {
            seg.name: flat[seg.offset:seg.offset + seg.size].reshape(seg.shape)
            for seg in bucket.segments
        }


def plan_grad_buckets(
    names: Sequence[str],
    specs: Mapping[str, tuple[tuple[int, ...], str]],
    bucket_bytes: int = DEFAULT_BUCKET_BYTES,
) -> GradBucketPlan:
    """Assign parameters to buckets, greedily, in parameter order.

    ``names`` fixes the order (the training graph's parameter order —
    identical on every rank by construction); ``specs`` maps each name
    to ``(shape, dtype_str)``. A bucket closes when adding the next
    parameter would exceed ``bucket_bytes`` or change dtype; a single
    parameter larger than the cap gets a bucket of its own.
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    buckets: list[GradBucket] = []
    current: list[BucketSegment] = []
    current_dtype: str | None = None
    offset = 0

    def close() -> None:
        nonlocal current, current_dtype, offset
        if current:
            buckets.append(
                GradBucket(len(buckets), current_dtype, tuple(current))
            )
        current, current_dtype, offset = [], None, 0

    for name in names:
        shape, dtype = specs[name]
        dtype = str(np.dtype(dtype))
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = size * np.dtype(dtype).itemsize
        if current and (
            dtype != current_dtype
            or (offset * np.dtype(current_dtype).itemsize) + nbytes
            > bucket_bytes
        ):
            close()
        current.append(BucketSegment(name, tuple(shape), dtype, offset))
        current_dtype = dtype
        offset += size
    close()
    return GradBucketPlan(tuple(buckets), bucket_bytes)
