"""Point-to-point channels under the distributed process group.

Both backends expose the same contract: a full mesh of FIFO, typed
channels — one per ordered ``(src, dst)`` rank pair — carrying small
python objects and numpy arrays. Collectives only ever talk to ring
neighbours, but the mesh is built up front because the fault-tolerance
protocol (:meth:`repro.dist.group.ProcessGroup.reform`) needs any
survivor to reach any other survivor once the ring is broken.

* :class:`ThreadChannel` — an in-process deque + condition variable.
  Arrays are copied on send so a sender mutating its buffer after the
  fact (the all-reduce accumulates in place) can never alias a
  receiver's view. Fast, deterministic, and debuggable: the backend the
  test suite leans on.
* :class:`PipeChannel` — a ``multiprocessing`` connection between two
  real processes. Pickling copies arrays inherently; ``poll(timeout)``
  provides the recv timeout and a closed peer surfaces as
  :class:`ChannelClosed` (the OS closes the fd when a rank dies, even
  ungracefully).

A channel carries *messages*, not raw bytes: tuples tagged by the group
layer with ``(generation, seq, tag)`` headers. Channels know nothing
about the headers beyond transporting them.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["ChannelClosed", "ChannelTimeout", "ThreadChannel", "PipeChannel"]


class ChannelTimeout(Exception):
    """No message arrived within the deadline."""


class ChannelClosed(Exception):
    """The peer's end of the channel is gone (rank death or shutdown)."""


class ThreadChannel:
    """One-directional FIFO between two rank *threads* in one process."""

    def __init__(self) -> None:
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def send(self, message: Any) -> None:
        from repro.dist.wire import copy_message

        with self._cond:
            if self._closed:
                raise ChannelClosed("channel closed")
            # Copy arrays now: the sender reuses its accumulation buffers.
            self._items.append(copy_message(message))
            self._cond.notify()

    def recv(self, timeout: float | None = None) -> Any:
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                raise ChannelTimeout(f"no message within {timeout}s")
            if self._items:
                return self._items.popleft()
            raise ChannelClosed("peer closed the channel")

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed


class PipeChannel:
    """One *end* of a duplex ``multiprocessing`` pipe between two ranks.

    Each unordered rank pair shares one duplex pipe; each process keeps
    its own end, so the pair provides both directions of the mesh.
    Send failures on a dead peer (``BrokenPipeError``) and EOF on recv
    both normalize to :class:`ChannelClosed` — the caller treats them
    identically as "that rank is gone".
    """

    def __init__(self, conn: Any) -> None:
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message: Any) -> None:
        try:
            with self._lock:
                self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ChannelClosed(f"peer pipe broken: {exc}") from exc

    def recv(self, timeout: float | None = None) -> Any:
        try:
            if timeout is not None and not self._conn.poll(timeout):
                raise ChannelTimeout(f"no message within {timeout}s")
            return self._conn.recv()
        except EOFError as exc:
            raise ChannelClosed("peer closed the pipe") from exc
        except (BrokenPipeError, OSError) as exc:
            raise ChannelClosed(f"peer pipe broken: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
