"""Ring collectives with a fixed, canonical reduction order.

**Why the order matters.** Float addition is not associative, so "the
sum of per-rank gradients" is not one number — it is one number *per
summation order*. The classic rotated ring all-reduce (reduce-scatter +
all-gather) reduces chunk ``c`` along the ring walk starting at rank
``c+1``: deterministic, but a *different* order per chunk, so the result
depends on the chunking and can never equal a plain serial sum bitwise.

This implementation pins one canonical order instead: **every chunk is
reduced in ascending ring position** — ``((x₀ + x₁) + x₂) + …`` — by
rooting the reduction at position 0 and pipelining chunks along the
ring (position 0 streams its chunks right; each position adds its own
contribution and forwards; the last position holds the full sums and
streams them back around). Consequences:

* the result is bitwise identical across runs, backends, thread counts,
  and — crucially — **chunk sizes**, because elementwise addition order
  is the same no matter where the chunk boundaries fall;
* the result equals :func:`reference_allreduce`, a five-line serial
  fold, which is what the single-process data-parallel baseline uses —
  so "N-rank training matches 1-rank training bitwise" is checkable;
* per-rank traffic stays the ring-optimal ~2·S bytes (each rank sends
  every byte at most twice); the price is one extra ring latency term
  versus the rotated variant, irrelevant at gradient sizes.

``op="mean"`` divides the completed sum by the live-rank count on every
rank *after* the ring finishes, with the same dtype-preserving
expression everywhere (including the reference), keeping the mean
bitwise identical too. The degrade path gets its loss re-weighting for
free: after a reform shrinks the ring to K survivors, ``mean`` divides
by K.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.dist.group import ProcessGroup
from repro.obs import trace as obs_trace

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ring_allreduce",
    "ring_allgather",
    "ring_broadcast",
    "barrier",
    "reference_allreduce",
    "allreduce_named",
]

#: default all-reduce chunk granularity (pipelining quantum)
DEFAULT_CHUNK_BYTES = 1 << 16


def _chunk_slices(size: int, itemsize: int, chunk_bytes: int) -> list[slice]:
    """Contiguous chunk slices over a flat array of ``size`` elements."""
    elems = max(1, int(chunk_bytes) // max(1, itemsize))
    return [slice(lo, min(lo + elems, size)) for lo in range(0, size, elems)]


def _traced_io(group: ProcessGroup) -> tuple[Any, Any]:
    """Span-wrapped ``(send, recv)`` for per-chunk wire visibility.

    Only built when tracing is on; the spans land on the calling rank's
    thread, tagged with peer/seq/tag so :func:`repro.obs.trace.
    merge_chrome_traces` can align send/recv pairs across ranks.
    """

    def send(peer: int, seq: int, tag: Any, payload: Any) -> None:
        with obs_trace.span(
            "dist.chunk.send", "dist",
            {"to": peer, "seq": seq, "tag": str(tag)},
        ):
            group.send(peer, seq, tag, payload)

    def recv(peer: int, seq: int, tag: Any, timeout_s: float | None) -> Any:
        with obs_trace.span(
            "dist.chunk.recv", "dist",
            {"from": peer, "seq": seq, "tag": str(tag)},
        ):
            return group.recv(peer, seq, tag, timeout_s)

    return send, recv


def _io(group: ProcessGroup) -> tuple[Any, Any]:
    """The group's raw ``(send, recv)``, traced when tracing is on."""
    if obs_trace.TRACING:
        return _traced_io(group)
    return group.send, group.recv


def _apply_mean(total: np.ndarray, count: int) -> np.ndarray:
    """Divide by the rank count, identically on every rank and in the
    serial reference (same expression → same rounding → same bits)."""
    np.divide(total, total.dtype.type(count), out=total)
    return total


def ring_allreduce(
    group: ProcessGroup,
    array: np.ndarray,
    op: str = "sum",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    timeout_s: float | None = None,
) -> np.ndarray:
    """All-reduce ``array`` over the live ring; returns a new array.

    Every rank must pass the same shape and dtype. The reduction order
    is canonical (ascending ring position, chunk-independent); see the
    module docstring. ``op`` is ``"sum"`` or ``"mean"``.
    """
    if op not in ("sum", "mean"):
        raise ValueError(f"unsupported op {op!r}")
    group.stats.on_collective(f"allreduce_{op}")
    k = group.live_size
    flat = np.ascontiguousarray(array).reshape(-1)
    if k == 1:
        out = flat.copy()
        if op == "mean":
            _apply_mean(out, 1)
        return out.reshape(array.shape)

    seq = group.next_seq()
    pos, right, left = group.position, group.right, group.left
    slices = _chunk_slices(flat.size, flat.itemsize, chunk_bytes)
    out = np.empty_like(flat)
    send, recv = _io(group)

    with obs_trace.span(
        "dist.allreduce", "dist",
        {"gen": group.generation, "seq": seq, "rank": group.rank,
         "op": op, "chunks": len(slices), "bytes": int(flat.nbytes)},
    ):
        # Reduce pass: partial sums flow position 0 -> K-1, each position
        # adding its contribution in ring order (the canonical fold).
        for c, sl in enumerate(slices):
            if pos == 0:
                send(right, seq, ("ar", c, "red"), flat[sl])
            else:
                part = recv(left, seq, ("ar", c, "red"), timeout_s)
                np.add(part, flat[sl], out=part)
                if pos < k - 1:
                    send(right, seq, ("ar", c, "red"), part)
                else:
                    out[sl] = part

        # Broadcast pass: the full sums flow K-1 -> 0 -> ... -> K-2.
        for c, sl in enumerate(slices):
            if pos == k - 1:
                send(right, seq, ("ar", c, "bc"), out[sl])
            else:
                chunk = recv(left, seq, ("ar", c, "bc"), timeout_s)
                out[sl] = chunk
                if pos < k - 2:
                    send(right, seq, ("ar", c, "bc"), chunk)

    if op == "mean":
        _apply_mean(out, k)
    return out.reshape(array.shape)


def reference_allreduce(
    arrays: Sequence[np.ndarray], op: str = "sum"
) -> np.ndarray:
    """The serial fold the ring reproduces bitwise: ``((a₀+a₁)+a₂)+…``.

    ``arrays`` must be ordered by ring position (ascending surviving
    rank). This is the single-process baseline distributed training is
    compared against.
    """
    if op not in ("sum", "mean"):
        raise ValueError(f"unsupported op {op!r}")
    if not arrays:
        raise ValueError("need at least one array")
    acc = np.array(arrays[0], copy=True)
    for contribution in arrays[1:]:
        np.add(acc, contribution, out=acc)
    if op == "mean":
        _apply_mean(acc.reshape(-1), len(arrays))
    return acc


def ring_allgather(
    group: ProcessGroup,
    array: np.ndarray,
    timeout_s: float | None = None,
) -> dict[int, np.ndarray]:
    """Gather every live rank's array; returns ``{rank: array}``.

    Pure data movement (no arithmetic): each rank's piece travels K-1
    hops around the ring. Shapes may differ across ranks.
    """
    group.stats.on_collective("allgather")
    k = group.live_size
    gathered: dict[int, np.ndarray] = {group.rank: np.array(array, copy=True)}
    if k == 1:
        return gathered
    seq = group.next_seq()
    current = gathered[group.rank]
    send, recv = _io(group)
    with obs_trace.span(
        "dist.allgather", "dist",
        {"gen": group.generation, "seq": seq, "rank": group.rank},
    ):
        for step in range(k - 1):
            send(group.right, seq, ("ag", step), current)
            current = recv(group.left, seq, ("ag", step), timeout_s)
            source = group.neighbor(-(step + 1))
            gathered[source] = current
    return gathered


def ring_broadcast(
    group: ProcessGroup,
    array: np.ndarray | None,
    root: int = 0,
    timeout_s: float | None = None,
) -> np.ndarray:
    """Broadcast ``array`` from ``root`` (a live rank) around the ring."""
    if root not in group.live:
        raise ValueError(f"root {root} is not a live rank {group.live}")
    group.stats.on_collective("broadcast")
    k = group.live_size
    if k == 1:
        return np.array(array, copy=True)
    seq = group.next_seq()
    root_pos = group.live.index(root)
    distance = (group.position - root_pos) % k
    send, recv = _io(group)
    with obs_trace.span(
        "dist.broadcast", "dist",
        {"gen": group.generation, "seq": seq, "rank": group.rank,
         "root": root},
    ):
        if distance == 0:
            value = np.asarray(array)
            send(group.right, seq, ("bc",), value)
            return np.array(value, copy=True)
        value = recv(group.left, seq, ("bc",), timeout_s)
        if distance < k - 1:
            send(group.right, seq, ("bc",), value)
        return value


def barrier(group: ProcessGroup, timeout_s: float | None = None) -> None:
    """Two full laps of a token around the ring.

    After lap one, every rank has entered the barrier; after lap two,
    every rank knows that, and may leave.
    """
    group.stats.on_collective("barrier")
    if group.live_size == 1:
        return
    seq = group.next_seq()
    send, recv = _io(group)
    with obs_trace.span(
        "dist.barrier", "dist",
        {"gen": group.generation, "seq": seq, "rank": group.rank},
    ):
        for lap in (0, 1):
            tag = ("bar", lap)
            if group.position == 0:
                send(group.right, seq, tag, None)
                recv(group.left, seq, tag, timeout_s)
            else:
                recv(group.left, seq, tag, timeout_s)
                send(group.right, seq, tag, None)


def allreduce_named(
    group: ProcessGroup,
    arrays: Mapping[str, np.ndarray],
    op: str = "sum",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    timeout_s: float | None = None,
) -> dict[str, np.ndarray]:
    """All-reduce a named family of arrays as one flat ring transfer.

    Concatenation order is the sorted key order — fixed on every rank —
    so the result is a pure function of the values, not of dict
    insertion history. Convenience for callers without a bucket plan.
    """
    keys = sorted(arrays)
    flats = [np.ascontiguousarray(arrays[k]).reshape(-1) for k in keys]
    if not flats:
        return {}
    dtype = flats[0].dtype
    if any(f.dtype != dtype for f in flats):
        raise ValueError("all arrays must share one dtype")
    packed = np.concatenate(flats)
    reduced = ring_allreduce(
        group, packed, op=op, chunk_bytes=chunk_bytes, timeout_s=timeout_s
    )
    out: dict[str, np.ndarray] = {}
    offset = 0
    for key in keys:
        size = int(np.prod(arrays[key].shape, dtype=np.int64))
        out[key] = reduced[offset:offset + size].reshape(arrays[key].shape)
        offset += size
    return out
