"""The process group: ranks, ring geometry, fault detection, re-forming.

A :class:`ProcessGroup` is one rank's handle on the cohort. It owns a
full mesh of point-to-point channels (see :mod:`repro.dist.channels`),
the ring geometry the collectives walk (``live`` — the sorted surviving
ranks — defines neighbour order), and the failure machinery:

* **timeouts** — every ``recv`` carries a deadline; a peer that doesn't
  produce within it raises :class:`CollectiveTimeout`;
* **death detection** — a closed channel (process backend: the OS closes
  a dead rank's pipe fds) raises :class:`PeerGone` immediately;
* **generations** — messages are tagged with the ring incarnation.
  After an aborted collective, leftover traffic from the old generation
  is silently dropped; traffic from a *newer* generation (a peer that
  already re-formed) is stashed until this rank catches up;
* **re-forming** — :meth:`reform` is the documented degrade path: at a
  step boundary, every survivor probes the cohort (HELLO), the lowest
  surviving rank assumes leadership and publishes the agreed roster
  (ROSTER), and the ring continues over the survivors with a bumped
  generation. A rank not on the roster raises :class:`RankEvicted`.

The group is deliberately single-consumer: within one rank, exactly one
thread may drive collectives at a time (the distributed trainer funnels
everything through its communicator thread). The mesh channels are
thread-safe; the ordering discipline is not, by design — collectives on
all ranks must run in one agreed sequence or the ``seq`` check trips.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

import numpy as np

from repro.dist.channels import ChannelClosed, ChannelTimeout
from repro.dist.stats import DistStats
from repro.dist.wire import Message

__all__ = [
    "DistError",
    "CollectiveTimeout",
    "PeerGone",
    "ProtocolError",
    "RankEvicted",
    "ProcessGroup",
    "DEFAULT_TIMEOUT_S",
]

#: default per-recv deadline; generous for CI boxes under load
DEFAULT_TIMEOUT_S = 60.0


class DistError(RuntimeError):
    """Base class for distributed-runtime failures."""


class CollectiveTimeout(DistError):
    """A peer failed to produce a message within the deadline."""

    def __init__(self, rank: int, peer: int, tag: tuple, waited_s: float):
        self.rank, self.peer, self.tag = rank, peer, tag
        self.waited_s = waited_s
        super().__init__(
            f"rank {rank}: no message from rank {peer} for tag {tag} "
            f"within {waited_s:.3f}s"
        )


class PeerGone(DistError):
    """A peer's channel is closed — the rank is dead."""

    def __init__(self, rank: int, peer: int):
        self.rank, self.peer = rank, peer
        super().__init__(f"rank {rank}: rank {peer} is gone (channel closed)")


class ProtocolError(DistError):
    """Ranks disagreed on the collective sequence — a bug, not a fault."""


class RankEvicted(DistError):
    """This rank was left off the re-formed roster (judged dead/slow)."""


class ProcessGroup:
    """One rank's membership in the cohort, over any channel backend.

    ``outgoing``/``incoming`` map peer rank to the channel carrying
    messages to/from that peer. Both backends (threads, processes) build
    these maps and hand them here; everything above the channel layer —
    ring geometry, generations, reform — is backend-independent.
    """

    def __init__(
        self,
        rank: int,
        world_size: int,
        outgoing: dict[int, Any],
        incoming: dict[int, Any],
        timeout_s: float = DEFAULT_TIMEOUT_S,
        stats: DistStats | None = None,
    ) -> None:
        if rank not in range(world_size):
            raise ValueError(f"rank {rank} outside world of {world_size}")
        self.rank = rank
        self.world_size = world_size
        self.generation = 0
        self.live: tuple[int, ...] = tuple(range(world_size))
        self.timeout_s = timeout_s
        self.stats = stats or DistStats(rank)
        self._out = outgoing
        self._in = incoming
        self._seq = 0
        #: per-peer stash of messages from a newer generation than ours
        self._stash: dict[int, deque[Message]] = {
            p: deque() for p in range(world_size)
        }
        self._closed = False

    # -- ring geometry -------------------------------------------------------

    @property
    def live_size(self) -> int:
        return len(self.live)

    @property
    def position(self) -> int:
        """This rank's index on the current ring (sorted survivor order)."""
        return self.live.index(self.rank)

    def neighbor(self, offset: int) -> int:
        """Rank ``offset`` ring positions to the right (negative: left)."""
        return self.live[(self.position + offset) % self.live_size]

    @property
    def right(self) -> int:
        return self.neighbor(+1)

    @property
    def left(self) -> int:
        return self.neighbor(-1)

    # -- messaging -----------------------------------------------------------

    def next_seq(self) -> int:
        """Sequence number for the next collective; same on every rank."""
        self._seq += 1
        return self._seq

    def send(self, dst: int, seq: int, tag: tuple, payload: Any) -> None:
        message = Message(self.generation, seq, tag, payload)
        try:
            self._out[dst].send(message)
        except ChannelClosed as exc:
            self.stats.on_peer_gone()
            raise PeerGone(self.rank, dst) from exc
        nbytes = (
            payload.nbytes if isinstance(payload, np.ndarray) else 64
        )
        self.stats.on_send(nbytes)

    def recv(
        self,
        src: int,
        seq: int,
        tag: tuple,
        timeout_s: float | None = None,
    ) -> Any:
        """Next in-generation message from ``src``; must match seq + tag.

        Older-generation traffic is dropped (leftovers of an aborted
        collective); newer-generation traffic is stashed for after the
        next :meth:`reform`. An in-generation mismatch of ``seq`` or
        ``tag`` is a protocol bug and raises — channels are FIFO and all
        ranks run the same collective program, so there is nothing else
        it could be.
        """
        deadline = time.monotonic() + (
            self.timeout_s if timeout_s is None else timeout_s
        )
        started = time.monotonic()
        while True:
            message = self._next_message(src, deadline, tag)
            waited = time.monotonic() - started
            if message.generation < self.generation:
                self.stats.on_stale_dropped()
                continue
            if message.generation > self.generation:
                self._stash[src].append(message)
                continue
            if message.seq != seq or message.tag != tag:
                raise ProtocolError(
                    f"rank {self.rank}: expected seq={seq} tag={tag} from "
                    f"rank {src}, got seq={message.seq} tag={message.tag}"
                )
            self.stats.on_recv_wait(src, waited)
            return message.payload

    def _next_message(self, src: int, deadline: float, tag: tuple) -> Message:
        stash = self._stash[src]
        for i, message in enumerate(stash):
            if message.generation == self.generation:
                del stash[i]
                return message
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self.stats.on_timeout()
            raise CollectiveTimeout(self.rank, src, tag, 0.0)
        try:
            return self._in[src].recv(timeout=remaining)
        except ChannelTimeout:
            self.stats.on_timeout()
            raise CollectiveTimeout(self.rank, src, tag, remaining) from None
        except ChannelClosed:
            self.stats.on_peer_gone()
            raise PeerGone(self.rank, src) from None

    # -- fault handling ------------------------------------------------------

    def reform(self, timeout_s: float | None = None) -> tuple[int, ...]:
        """Re-form the ring over the surviving ranks (the degrade path).

        Called by every survivor after a collective failed, at a step
        boundary. Protocol, one round:

        1. **HELLO** — broadcast ``(gen+1, "hello")`` to every current
           peer (best-effort; sends to the dead are swallowed).
        2. **gather** — collect HELLOs until the deadline. Any newer-
           generation traffic from a peer counts as proof of life (a
           fast peer may already be past its own reform).
        3. **ROSTER** — the lowest rank heard (the leader) publishes the
           survivor set; everyone else adopts the leader's roster. A
           rank that finds itself off the roster raises
           :class:`RankEvicted`; a rank that hears no roster at all
           raises :class:`DistError` (it has been isolated).

        On success: ``generation`` bumps, ``live`` shrinks, per-
        generation sequence numbers restart, and the caller may rerun
        the failed step over the smaller ring (the trainer rescales its
        loss weighting by the survivor count).

        **Timing.** Survivors detect a failure at different moments: a
        dead rank's pipe neighbours see EOF instantly, everyone else
        waits out a collective timeout. That skew is bounded by the
        group's per-recv deadline, so both the HELLO gather and the
        roster wait run for ``timeout_s`` *plus* ``self.timeout_s`` —
        a gather window that ended before slow detectors even noticed
        the failure would re-form a partitioned (even solo) ring.
        """
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        budget = timeout_s + self.timeout_s
        new_gen = self.generation + 1
        peers = [r for r in self.live if r != self.rank]
        hello = Message(new_gen, 0, ("hello",), self.rank)
        for peer in peers:
            try:
                self._out[peer].send(hello)
            except ChannelClosed:
                pass

        alive = {self.rank}
        deadline = time.monotonic() + budget
        pending = set(peers)
        while pending and time.monotonic() < deadline:
            for peer in sorted(pending):
                if self._probe_alive(peer, new_gen):
                    alive.add(peer)
                    pending.discard(peer)
            if pending:
                time.sleep(0.005)

        leader = min(alive)
        roster: tuple[int, ...]
        if leader == self.rank:
            roster = tuple(sorted(alive))
            publish = Message(new_gen, 0, ("roster",), roster)
            for peer in roster:
                if peer == self.rank:
                    continue
                try:
                    self._out[peer].send(publish)
                except ChannelClosed:
                    pass
        else:
            # Fresh deadline: the gather loop above legitimately runs its
            # budget out waiting on the dead, and the leader — which may
            # have detected the failure a full collective timeout later —
            # only publishes after finishing its own gather.
            roster = self._await_roster(
                leader, new_gen, time.monotonic() + budget
            )
            if self.rank not in roster:
                raise RankEvicted(
                    f"rank {self.rank}: not on re-formed roster {roster}"
                )
        self.generation = new_gen
        self.live = roster
        self._seq = 0
        self.stats.on_reform()
        return roster

    def _probe_alive(self, peer: int, new_gen: int) -> bool:
        """Has ``peer`` produced any ``new_gen`` traffic yet?

        HELLO is consumed; anything else from the new generation (the
        peer's ROSTER, or even its first post-reform collective) is
        stashed as ordinary traffic and counts as proof of life.
        """
        stash = self._stash[peer]
        for i, message in enumerate(stash):
            if message.generation >= new_gen:
                if message.tag == ("hello",):
                    del stash[i]
                return True
        while True:
            try:
                message = self._in[peer].recv(timeout=0)
            except (ChannelTimeout, ChannelClosed):
                return False
            if message.generation < new_gen:
                self.stats.on_stale_dropped()
                continue
            if message.tag != ("hello",):
                stash.append(message)
            return True

    def _await_roster(
        self, leader: int, new_gen: int, deadline: float
    ) -> tuple[int, ...]:
        stash = self._stash[leader]
        while True:
            for i, message in enumerate(stash):
                if message.generation == new_gen and message.tag == (
                    "roster",
                ):
                    del stash[i]
                    return tuple(message.payload)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DistError(
                    f"rank {self.rank}: no roster from leader {leader} "
                    "after reform — isolated"
                )
            try:
                message = self._in[leader].recv(timeout=remaining)
            except (ChannelTimeout, ChannelClosed):
                raise DistError(
                    f"rank {self.rank}: no roster from leader {leader} "
                    "after reform — isolated"
                ) from None
            if message.generation < new_gen:
                self.stats.on_stale_dropped()
                continue
            stash.append(message)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close this rank's channel ends (wakes any blocked neighbour)."""
        if self._closed:
            return
        self._closed = True
        for chan in list(self._out.values()) + list(self._in.values()):
            try:
                chan.close()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    def __enter__(self) -> "ProcessGroup":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
