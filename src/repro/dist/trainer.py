"""Distributed data-parallel training over the ring collectives.

:class:`DistributedTrainer` wraps the single-device
:class:`~repro.train.Trainer` for one rank of a data-parallel cohort:

* **shard-by-rank sampling** — every rank receives the same global
  batch and keeps its contiguous slice (:func:`repro.data.sharding.\
shard_feeds`), so the cohort consumes exactly the batches a single
  device would;
* **synchronized start** — initial parameters are ring-broadcast from
  the leader, and every rank's gradient-bucket layout fingerprint is
  all-gathered and compared before step one (a mismatched model build
  fails loudly instead of producing garbage numerics);
* **overlapped reduction** — gradients are packed into flat buckets
  (:mod:`repro.dist.bucketing`) and each bucket's ring all-reduce is
  handed to a per-rank communicator thread the moment the wavefront
  executor retires the program item finalizing the bucket's last
  gradient (the ``on_item`` level-completion hook), so communication
  runs under the tail of backward;
* **global clipping** — the optimizer update (and hence ``clip_norm``)
  runs on the *reduced* mean gradients, so the clip norm is the global
  norm — identical on every rank — not a per-shard norm;
* **degrade path** — a :class:`~repro.dist.group.CollectiveTimeout` or
  :class:`~repro.dist.group.PeerGone` aborts the step, survivors
  re-form the ring (:meth:`~repro.dist.group.ProcessGroup.reform`) at
  the step boundary, and the step reruns over the smaller ring. The
  ``mean`` reduction divides by the live count, so loss weighting
  rescales automatically; the dead rank's shard is dropped.

**Bitwise determinism.** Every collective reduces in the canonical
ascending-rank order (:mod:`repro.dist.collectives`), bucket packing is
pure data movement, and the mean divides with one shared expression —
so an N-rank run's parameter trajectory is bitwise identical across
runs, backends, bucket caps, and chunk sizes, and equals
:func:`data_parallel_reference`, the single-process fold over the same
shards. (A *single-graph* full-batch run can never match bitwise — the
GEMMs would reduce over the batch in a different order — which is why
the reference replays the shard graphs, not the fused batch.)

**Dropout.** Masks are seeded by (node name, global step); every rank
sets the same global step each iteration, so shards share masks with
each other and with the reference. The per-step loss all-reduce
doubles as a step barrier: no rank can enter step ``N+1``'s compute —
and bump the process-global dropout step, visible to sibling rank
threads under the thread backend — before every rank has finished step
``N``'s compute.

Ranks share one profile-guided tuning store (``REPRO_TUNE_DIR``): the
PR-5 :class:`~repro.pgo.store.TuneStore` is file-locked, so concurrent
writers are safe, and :func:`calibrate_shared` has the leader measure
once for the whole cohort.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict
from typing import Any, Iterable, Mapping

import numpy as np

from repro.autodiff.training import TrainingGraph
from repro.data.sharding import shard_feeds
from repro.dist.bucketing import (
    DEFAULT_BUCKET_BYTES,
    GradBucket,
    plan_grad_buckets,
)
from repro.dist.collectives import (
    DEFAULT_CHUNK_BYTES,
    barrier,
    reference_allreduce,
    ring_allgather,
    ring_allreduce,
    ring_broadcast,
)
from repro.dist.group import (
    CollectiveTimeout,
    DistError,
    PeerGone,
    ProcessGroup,
    ProtocolError,
)
from repro.obs import trace as obs_trace
from repro.runtime import PlanCache, TrainingExecutor
from repro.train.metrics import perplexity
from repro.train.optimizer import Optimizer
from repro.train.trainer import Trainer, TrainRecord

__all__ = [
    "DistributedTrainer",
    "data_parallel_reference",
    "calibrate_shared",
]


class DistributedTrainer(Trainer):
    """One rank of a synchronous data-parallel cohort."""

    def __init__(
        self,
        group: ProcessGroup,
        graph: TrainingGraph,
        params: dict[str, np.ndarray],
        optimizer: Optimizer,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        shard_inputs: bool = True,
        batch_axes: Mapping[str, int] | None = None,
        sync_params: bool = True,
        check_layout: bool = True,
        **trainer_kwargs: Any,
    ) -> None:
        # Each rank compiles privately: under the thread backend a shared
        # plan cache would hand sibling rank threads one CompiledPlan
        # (and one arena) to race over.
        trainer_kwargs.setdefault("plan_cache", PlanCache())
        super().__init__(graph, params, optimizer, **trainer_kwargs)
        self.group = group
        self.chunk_bytes = chunk_bytes
        self.shard_inputs = shard_inputs
        self.batch_axes = dict(batch_axes) if batch_axes else None

        names = list(graph.grads)
        specs = {
            name: (tuple(params[name].shape), str(params[name].dtype))
            for name in names
        }
        self.bucket_plan = plan_grad_buckets(names, specs, bucket_bytes)
        self._grad_out_index = {name: 1 + i for i, name in enumerate(names)}

        # Static DS5xx coverage check before the first step: every
        # parameter reduced exactly once, segments tiling their buffers.
        # (Import is local: repro.analysis depends on dist.bucketing.)
        from repro.analysis.distcheck import check_bucket_plan

        issues = [
            f
            for f in check_bucket_plan(self.bucket_plan, specs)
            if f.severity.value == "error"
        ]
        if issues:
            raise ProtocolError(
                "gradient bucket plan failed verification:\n"
                + "\n".join(f.format() for f in issues)
            )

        plan = self.executor.executor.plan
        ready = plan.output_ready_items()
        self._last_item = plan.program_item_count - 1
        #: program item -> buckets whose last gradient it finalizes
        self._buckets_at: dict[int, list[GradBucket]] = defaultdict(list)
        for bucket in self.bucket_plan.buckets:
            item = max(
                ready[self._grad_out_index[seg.name]]
                for seg in bucket.segments
            )
            self._buckets_at[item].append(bucket)

        if check_layout:
            self._check_layout()
        if sync_params:
            self._sync_params()

        # One communicator thread per rank: the single consumer the
        # ProcessGroup requires, draining bucket jobs in the agreed order.
        self._jobs: queue.Queue = queue.Queue()
        self._reduced_buckets: dict[int, np.ndarray] = {}
        self._reduced_loss: float | None = None
        self._comm_error: BaseException | None = None
        self._step_done = threading.Event()
        #: attempt counter; jobs carry it so a retried step cannot
        #: accidentally run leftovers of the aborted attempt
        self._epoch = 0
        self._comm = threading.Thread(
            target=self._comm_loop,
            name=f"dist-comm-{group.rank}",
            daemon=True,
        )
        self._comm.start()

    # -- startup synchronization ---------------------------------------------

    def _check_layout(self) -> None:
        """All-gather bucket-layout fingerprints; any divergence raises."""
        mine = np.frombuffer(
            self.bucket_plan.fingerprint().encode(), dtype=np.uint8
        )
        gathered = ring_allgather(self.group, mine)
        for rank, fp in sorted(gathered.items()):
            if fp.shape != mine.shape or not np.array_equal(fp, mine):
                raise ProtocolError(
                    f"rank {self.group.rank}: gradient bucket layout "
                    f"diverges from rank {rank} — ranks built different "
                    "models or bucket caps"
                )

    def _sync_params(self) -> None:
        """Adopt the leader's initial parameters, name by sorted name."""
        root = self.group.live[0]
        for name in sorted(self.params):
            self.params[name] = ring_broadcast(
                self.group, self.params[name], root=root
            )

    # -- communicator thread -------------------------------------------------

    def _comm_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            epoch, kind = job[0], job[1]
            if epoch != self._epoch:
                # Leftover of an aborted attempt; the retry bumped the
                # epoch. Never runs a collective, never releases waiters.
                continue
            if self._comm_error is not None:
                # Step already failed: swallow its leftovers, but still
                # release the waiter when its last job arrives.
                if kind == "loss":
                    self._step_done.set()
                continue
            try:
                if kind == "bucket":
                    _, _, bucket, flat, overlapped = job
                    reduced = ring_allreduce(
                        self.group,
                        flat,
                        op="mean",
                        chunk_bytes=self.chunk_bytes,
                    )
                    self.group.stats.on_bucket(overlapped)
                    self._reduced_buckets[bucket.index] = reduced
                else:  # "loss" — always the step's final job
                    _, _, value = job
                    arr = np.array([value], dtype=np.float64)
                    self._reduced_loss = float(
                        ring_allreduce(
                            self.group,
                            arr,
                            op="mean",
                            chunk_bytes=self.chunk_bytes,
                        )[0]
                    )
                    self._step_done.set()
            except BaseException as exc:  # noqa: BLE001 - ferried to step()
                self._comm_error = exc
                if kind == "loss":
                    self._step_done.set()

    def _on_item(self, item_idx: int, regs: list) -> None:
        """Level-completion hook: launch ready buckets' reductions."""
        if self._comm_error is not None:
            raise self._comm_error
        plan = self.executor.executor.plan
        for bucket in self._buckets_at.get(item_idx, ()):
            grads = {
                seg.name: plan.output_value(
                    regs, self._grad_out_index[seg.name]
                )
                for seg in bucket.segments
            }
            flat = self.bucket_plan.flatten(bucket, grads)
            self._jobs.put(
                (
                    self._epoch,
                    "bucket",
                    bucket,
                    flat,
                    item_idx < self._last_item,
                )
            )

    # -- stepping ------------------------------------------------------------

    def step(self, feeds: Mapping[str, np.ndarray]) -> TrainRecord:
        """One synchronous data-parallel step over the live ring.

        ``feeds`` is the *global* batch (every rank passes the same one);
        this rank keeps its shard. On a peer fault the ring re-forms and
        the step reruns over the survivors — the returned record reflects
        the attempt that succeeded.
        """
        local = (
            shard_feeds(
                feeds,
                self.group.world_size,
                self.group.rank,
                self.batch_axes,
            )
            if self.shard_inputs
            else dict(feeds)
        )
        attempts = self.group.live_size
        for _ in range(attempts):
            try:
                return self._try_step(local)
            except (CollectiveTimeout, PeerGone):
                # Degrade: re-form over the survivors at this step
                # boundary, then rerun. reform() itself raises if this
                # rank was evicted or isolated.
                self.group.reform()
        raise DistError(
            f"rank {self.group.rank}: step kept failing through "
            f"{attempts} ring re-formations"
        )

    @property
    def step_done(self) -> threading.Event:
        """Set when the communicator finishes the current step's jobs.

        Event-driven synchronization point for tests: waiting on it (after
        ``step`` returns it is already set) replaces wall-clock sleeps.
        """
        return self._step_done

    def _try_step(self, local: Mapping[str, np.ndarray]) -> TrainRecord:
        with obs_trace.span(
            "dist.step", "dist",
            {"rank": self.group.rank, "gen": self.group.generation,
             "step": len(self.history) + 1},
        ):
            return self._try_step_inner(local)

    def _try_step_inner(self, local: Mapping[str, np.ndarray]) -> TrainRecord:
        self._epoch += 1
        self._reduced_buckets.clear()
        self._reduced_loss = None
        self._comm_error = None
        self._step_done.clear()

        loss, _, _ = self.executor.run(local, self.params, on_item=self._on_item)
        self._jobs.put((self._epoch, "loss", loss))
        # Worst case the communicator times out once (the first dead
        # collective) and skips the rest; anything beyond that budget
        # means the communicator itself is wedged.
        budget = 2.0 * self.group.timeout_s + 60.0
        if not self._step_done.wait(timeout=budget):
            raise DistError(
                f"rank {self.group.rank}: communicator made no progress "
                f"for {budget:.0f}s"
            )
        if self._comm_error is not None:
            raise self._comm_error

        mean_loss = self._reduced_loss
        if not np.isfinite(mean_loss):
            raise FloatingPointError(
                f"loss diverged to {mean_loss} at step {len(self.history)}"
            )
        reduced: dict[str, np.ndarray] = {}
        for bucket in self.bucket_plan.buckets:
            reduced.update(
                self.bucket_plan.unflatten(
                    bucket, self._reduced_buckets[bucket.index]
                )
            )
        grad_norm = self.optimizer.update(self.params, reduced)

        self._sim_clock += self.iteration_seconds
        self._samples += self.batch_size * self.group.live_size
        record = TrainRecord(
            step=len(self.history) + 1,
            samples_seen=self._samples,
            sim_seconds=self._sim_clock,
            loss=mean_loss,
            perplexity=perplexity(mean_loss),
            grad_norm=grad_norm,
        )
        self.history.append(record)
        self.speedometer.update(self._samples, self._sim_clock)
        self._record_metrics(record)
        if self.metrics is not None:
            snap = self.group.stats.snapshot()
            self.metrics.absorb(f"dist.rank{self.group.rank}", snap)
            total = (
                snap["overlap_reduced_buckets"] + snap["tail_reduced_buckets"]
            )
            self.metrics.gauge(
                f"dist.rank{self.group.rank}.overlap_fraction"
            ).set(
                snap["overlap_reduced_buckets"] / total if total else 0.0
            )
        return record

    def close(self) -> None:
        """Stop the communicator thread (the group stays open)."""
        if self._comm.is_alive():
            self._jobs.put(None)
            self._comm.join(timeout=10.0)

    def __enter__(self) -> "DistributedTrainer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def data_parallel_reference(
    graph: TrainingGraph,
    params: dict[str, np.ndarray],
    optimizer: Optimizer,
    batches: Iterable[Mapping[str, np.ndarray]],
    world_size: int,
    batch_axes: Mapping[str, int] | None = None,
    **executor_kwargs: Any,
) -> list[dict[str, float]]:
    """The single-process baseline N-rank training must match bitwise.

    Replays the cohort serially: per step, each "rank" runs the same
    shard-sized graph on its shard (one private executor per rank, so
    dropout iteration counters advance exactly as each real rank's
    executor does), gradients and losses fold in ascending rank order
    via :func:`reference_allreduce` (mean), and the optimizer update —
    with its global clip — applies to the shared parameters. Returns
    per-step ``{"loss", "grad_norm"}`` dicts; ``params`` is updated in
    place, exactly like the trainer's.
    """
    executor_kwargs.setdefault("plan_cache", PlanCache())
    executors = [
        TrainingExecutor(graph, **executor_kwargs) for _ in range(world_size)
    ]
    names = list(graph.grads)
    records: list[dict[str, float]] = []
    for feeds in batches:
        shard_losses: list[np.ndarray] = []
        shard_grads: list[dict[str, np.ndarray]] = []
        for rank in range(world_size):
            local = shard_feeds(feeds, world_size, rank, batch_axes)
            loss, grads, _ = executors[rank].run(local, params)
            shard_losses.append(np.array([loss], dtype=np.float64))
            # Executors reuse arena buffers across runs; keep copies.
            shard_grads.append(
                {name: np.array(grads[name], copy=True) for name in names}
            )
        mean_loss = float(reference_allreduce(shard_losses, op="mean")[0])
        reduced = {
            name: reference_allreduce(
                [g[name] for g in shard_grads], op="mean"
            )
            for name in names
        }
        grad_norm = optimizer.update(params, reduced)
        records.append({"loss": mean_loss, "grad_norm": grad_norm})
    return records


def calibrate_shared(
    group: ProcessGroup,
    graph: TrainingGraph,
    feeds: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    device: Any | None = None,
    repeats: int = 3,
    store: Any | None = None,
):
    """Leader-only profile-guided calibration for the whole cohort.

    The live leader measures the graph and merges into the shared
    :class:`~repro.pgo.store.TuneStore` (``REPRO_TUNE_DIR``; file-locked,
    so a concurrent writer from another job is safe); everyone else
    waits at the barrier and then builds plans against the same tuned
    costs. Call *before* constructing trainers.
    """
    from repro.pgo.harvest import calibrate_and_save
    from repro.pgo.store import default_store

    store = store if store is not None else default_store()
    if group.rank == group.live[0]:
        calibrate_and_save(
            graph, feeds, params, store=store, device=device, repeats=repeats
        )
    barrier(group)
    return store
