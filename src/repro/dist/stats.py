"""Distributed-training metrics: collective counts, bytes, stragglers.

The counters mirror :class:`repro.serve.stats.ServerStats` — the same
thread-safe accumulator shape, the same ``format_table`` report style —
but for the communication plane: how many collectives ran, how many
bytes this rank pushed onto the ring, how long it sat waiting for each
neighbour, and which peers are straggling (a recv that waited longer
than ``straggler_threshold_s`` before data arrived). Fault handling
shows up here too: timeouts, dead peers, and ring re-formations are all
counted, so a degraded run is legible from its stats dump alone.
"""

from __future__ import annotations

import threading

__all__ = ["DistStats"]

#: a recv that waits longer than this (seconds) marks the peer a straggler
DEFAULT_STRAGGLER_THRESHOLD_S = 0.25


class DistStats:
    """Thread-safe accumulator for one rank's communication lifetime."""

    def __init__(
        self,
        rank: int = 0,
        straggler_threshold_s: float = DEFAULT_STRAGGLER_THRESHOLD_S,
    ) -> None:
        self.rank = rank
        self.straggler_threshold_s = straggler_threshold_s
        self._lock = threading.Lock()
        self.collectives: dict[str, int] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        self.recv_wait_s = 0.0
        self.max_recv_wait_s = 0.0
        self.timeouts = 0
        self.peers_gone = 0
        self.reforms = 0
        self.stale_dropped = 0
        self.straggler_events: dict[int, int] = {}
        self.overlap_reduced = 0  # buckets reduced before backward finished
        self.tail_reduced = 0  # buckets reduced after the plan completed
        self._wait_samples: list[float] = []

    # -- recording (called by the group/collectives) ------------------------

    def on_collective(self, kind: str) -> None:
        with self._lock:
            self.collectives[kind] = self.collectives.get(kind, 0) + 1

    def on_send(self, nbytes: int) -> None:
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += nbytes

    def on_recv_wait(self, peer: int, waited_s: float) -> None:
        with self._lock:
            self.recv_wait_s += waited_s
            self.max_recv_wait_s = max(self.max_recv_wait_s, waited_s)
            self._wait_samples.append(waited_s)
            if len(self._wait_samples) > 4096:
                del self._wait_samples[: len(self._wait_samples) // 2]
            if waited_s > self.straggler_threshold_s:
                self.straggler_events[peer] = (
                    self.straggler_events.get(peer, 0) + 1
                )

    def on_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def on_peer_gone(self) -> None:
        with self._lock:
            self.peers_gone += 1

    def on_reform(self) -> None:
        with self._lock:
            self.reforms += 1

    def on_stale_dropped(self) -> None:
        with self._lock:
            self.stale_dropped += 1

    def on_bucket(self, overlapped: bool) -> None:
        with self._lock:
            if overlapped:
                self.overlap_reduced += 1
            else:
                self.tail_reduced += 1

    # -- derived ------------------------------------------------------------

    def stragglers(self) -> dict[int, int]:
        with self._lock:
            return dict(self.straggler_events)

    def snapshot(self) -> dict:
        """One machine-readable dict of everything (BENCH_dist.json)."""
        with self._lock:
            return {
                "rank": self.rank,
                "collectives": dict(self.collectives),
                "bytes_sent": self.bytes_sent,
                "messages_sent": self.messages_sent,
                "recv_wait_s": self.recv_wait_s,
                "max_recv_wait_s": self.max_recv_wait_s,
                "timeouts": self.timeouts,
                "peers_gone": self.peers_gone,
                "reforms": self.reforms,
                "stale_dropped": self.stale_dropped,
                "stragglers": dict(self.straggler_events),
                "overlap_reduced_buckets": self.overlap_reduced,
                "tail_reduced_buckets": self.tail_reduced,
            }

    def format_report(self) -> str:
        """Human-readable report (experiments table style)."""
        from repro.experiments.common import format_table
        from repro.profiler import sparkline

        snap = self.snapshot()
        rows = []
        for key, val in snap.items():
            if isinstance(val, dict):
                val = ", ".join(f"{k}:{v}" for k, v in sorted(val.items()))
                val = val or "-"
            elif isinstance(val, float):
                val = f"{val:.4f}"
            rows.append((str(key), str(val)))
        with self._lock:
            waits = list(self._wait_samples)
        if waits:
            rows.append(("recv waits over time", sparkline(waits)))
        return format_table(
            ["metric", "value"], rows, f"rank {self.rank} comm report"
        )
