"""Distributed data-parallel training: deterministic ring collectives,
gradient bucketing with backward overlap, and fault-tolerant rings.

Layering (each module only reaches down):

* :mod:`~repro.dist.wire`, :mod:`~repro.dist.channels` — messages and
  point-to-point transports (in-memory deques, multiprocessing pipes);
* :mod:`~repro.dist.group` — ring membership, generations, timeouts,
  the re-form (degrade) protocol;
* :mod:`~repro.dist.collectives` — ring all-reduce / all-gather /
  broadcast / barrier with one canonical, chunk-independent reduction
  order (bitwise equal to :func:`~repro.dist.collectives.\
reference_allreduce`);
* :mod:`~repro.dist.bucketing` — flat gradient buckets;
* :mod:`~repro.dist.launch` — thread / process backends;
* :mod:`~repro.dist.trainer` — :class:`DistributedTrainer` and the
  single-process bitwise baseline.
"""

from repro.dist.bucketing import (
    DEFAULT_BUCKET_BYTES,
    BucketSegment,
    GradBucket,
    GradBucketPlan,
    plan_grad_buckets,
)
from repro.dist.collectives import (
    DEFAULT_CHUNK_BYTES,
    allreduce_named,
    barrier,
    reference_allreduce,
    ring_allgather,
    ring_allreduce,
    ring_broadcast,
)
from repro.dist.group import (
    DEFAULT_TIMEOUT_S,
    CollectiveTimeout,
    DistError,
    PeerGone,
    ProcessGroup,
    ProtocolError,
    RankEvicted,
)
from repro.dist.launch import (
    DistWorkerError,
    create_thread_groups,
    run_distributed,
)
from repro.dist.stats import DistStats
from repro.dist.trainer import (
    DistributedTrainer,
    calibrate_shared,
    data_parallel_reference,
)

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_TIMEOUT_S",
    "BucketSegment",
    "CollectiveTimeout",
    "DistError",
    "DistStats",
    "DistWorkerError",
    "DistributedTrainer",
    "GradBucket",
    "GradBucketPlan",
    "PeerGone",
    "ProcessGroup",
    "ProtocolError",
    "RankEvicted",
    "allreduce_named",
    "barrier",
    "calibrate_shared",
    "create_thread_groups",
    "data_parallel_reference",
    "plan_grad_buckets",
    "reference_allreduce",
    "ring_allgather",
    "ring_allreduce",
    "ring_broadcast",
    "run_distributed",
]
