"""Message framing shared by both channel backends.

A message on the wire is ``(generation, seq, tag, payload)``:

* ``generation`` — the ring incarnation. Bumped by every successful
  :meth:`~repro.dist.group.ProcessGroup.reform`; messages from an older
  generation are leftovers of an aborted collective and are discarded on
  receive, messages from a *newer* generation are stashed (they belong
  to a peer that already re-formed and raced ahead to the next
  collective or the reform handshake itself).
* ``seq`` — the collective's sequence number inside its generation.
  Every rank runs the same collectives in the same order, so a mismatch
  is a protocol bug, not a timing accident; it raises immediately.
* ``tag`` — a short tuple naming the step inside the collective, e.g.
  ``("ar", chunk_index, "reduce")``. Matched exactly.
* ``payload`` — a numpy array or a small picklable object.
"""

from __future__ import annotations

from typing import Any, NamedTuple

import numpy as np

__all__ = ["Message", "copy_message"]


class Message(NamedTuple):
    generation: int
    seq: int
    tag: tuple
    payload: Any


def copy_message(message: Any) -> Any:
    """Deep-copy array payloads (thread backend's pass-by-value send)."""
    if isinstance(message, Message) and isinstance(message.payload, np.ndarray):
        return message._replace(payload=message.payload.copy())
    return message
