"""Launchers: run one function per rank, on threads or real processes.

``run_distributed(fn, world_size, backend=...)`` drives ``fn(group,
*args)`` on every rank and returns the per-rank results.

* **thread backend** — ranks are threads of this process, the mesh is
  in-memory deques. Fast (no fork, no pickling), fully deterministic,
  and a debugger sees every rank at once: the backend the test suite
  runs hundreds of collectives through. Numpy kernels release the GIL,
  so rank compute genuinely overlaps.
* **process backend** — ranks are ``multiprocessing`` children (fork
  where available, spawn otherwise), the mesh is duplex pipes. Real
  address-space isolation: a rank dying — even by ``os._exit`` — closes
  its pipe fds and its peers observe :class:`~repro.dist.group.PeerGone`
  or a timeout, exactly the failure modes the degrade path handles.
  Under spawn, ``fn`` and ``args`` must be picklable (module-level
  functions).

Both backends produce bitwise-identical numerics: the collectives pin
one canonical reduction order (see :mod:`repro.dist.collectives`), and
every rank's kernels are the same numpy running on the same host.

Fan-in of results: each rank's return value (or exception). With
``return_exceptions=True`` failures come back in the result list as
exception objects — fault-injection tests want to see *which* ranks
died and *which* degraded gracefully — otherwise the first failure
re-raises in the caller.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from typing import Any, Callable, Sequence

from repro.dist.channels import PipeChannel, ThreadChannel
from repro.obs import trace as obs_trace
from repro.dist.group import DEFAULT_TIMEOUT_S, DistError, ProcessGroup
from repro.dist.stats import DistStats

__all__ = ["DistWorkerError", "create_thread_groups", "run_distributed"]

#: wall-clock budget for a whole distributed run (launcher-level guard)
DEFAULT_JOIN_TIMEOUT_S = 300.0


class DistWorkerError(DistError):
    """A rank failed; carries the rank and its formatted traceback."""

    def __init__(self, rank: int, detail: str):
        self.rank = rank
        self.detail = detail
        super().__init__(f"rank {rank} failed:\n{detail}")


def create_thread_groups(
    world_size: int,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    straggler_threshold_s: float | None = None,
) -> list[ProcessGroup]:
    """A full in-process mesh: one :class:`ProcessGroup` per rank thread."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    mesh: dict[tuple[int, int], ThreadChannel] = {
        (src, dst): ThreadChannel()
        for src in range(world_size)
        for dst in range(world_size)
        if src != dst
    }
    groups = []
    for rank in range(world_size):
        stats = DistStats(rank)
        if straggler_threshold_s is not None:
            stats.straggler_threshold_s = straggler_threshold_s
        groups.append(
            ProcessGroup(
                rank,
                world_size,
                outgoing={
                    dst: mesh[(rank, dst)]
                    for dst in range(world_size)
                    if dst != rank
                },
                incoming={
                    src: mesh[(src, rank)]
                    for src in range(world_size)
                    if src != rank
                },
                timeout_s=timeout_s,
                stats=stats,
            )
        )
    return groups


def _collect(
    results: list[Any], return_exceptions: bool
) -> list[Any]:
    if not return_exceptions:
        for result in results:
            if isinstance(result, BaseException):
                raise result
    return results


def _run_threads(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any],
    timeout_s: float,
    join_timeout_s: float,
    return_exceptions: bool,
) -> list[Any]:
    groups = create_thread_groups(world_size, timeout_s=timeout_s)
    results: list[Any] = [None] * world_size

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(groups[rank], *args)
        except BaseException as exc:  # noqa: BLE001 - ferried to the caller
            results[rank] = exc

    threads = [
        threading.Thread(
            target=worker, args=(rank,), name=f"dist-rank-{rank}", daemon=True
        )
        for rank in range(world_size)
    ]
    for thread in threads:
        thread.start()
    for rank, thread in enumerate(threads):
        thread.join(timeout=join_timeout_s)
        if thread.is_alive():
            # Close every channel: blocked ranks wake with ChannelClosed
            # instead of leaking threads for the rest of the process.
            for group in groups:
                group.close()
            thread.join(timeout=5.0)
            results[rank] = DistWorkerError(
                rank, f"rank thread still running after {join_timeout_s}s"
            )
    for group in groups:
        group.close()
    return _collect(results, return_exceptions)


def _process_worker(
    rank: int,
    world_size: int,
    conns: dict[int, Any],
    close_conns: list[Any],
    result_conn: Any,
    fn: Callable[..., Any],
    args: Sequence[Any],
    timeout_s: float,
) -> None:
    # Drop inherited fds for other pairs: a dead peer's pipe only reads
    # EOF once *no* surviving process holds its write end.
    for conn in close_conns:
        try:
            conn.close()
        except OSError:
            pass
    channels = {peer: PipeChannel(conn) for peer, conn in conns.items()}
    group = ProcessGroup(
        rank,
        world_size,
        outgoing=channels,
        incoming=channels,
        timeout_s=timeout_s,
        stats=DistStats(rank),
    )
    # An env-armed tracer was inherited across the fork still tagged
    # with the parent's pid; retag so ranks merge as distinct processes.
    obs_trace.set_process(rank, f"rank{rank}")
    try:
        result = fn(group, *args)
    except BaseException:  # noqa: BLE001 - ferried to the parent
        result_conn.send(("err", traceback.format_exc()))
    else:
        result_conn.send(("ok", result))
    finally:
        result_conn.close()
        group.close()
        # Children exit via os._exit and skip atexit — flush any
        # env-armed trace export (pid-suffixed) before that happens.
        obs_trace.flush_exit_exports()


def _run_processes(
    fn: Callable[..., Any],
    world_size: int,
    args: Sequence[Any],
    timeout_s: float,
    join_timeout_s: float,
    return_exceptions: bool,
) -> list[Any]:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    # One duplex pipe per unordered pair; each rank keeps one end.
    conns_by_rank: dict[int, dict[int, Any]] = {
        r: {} for r in range(world_size)
    }
    for a in range(world_size):
        for b in range(a + 1, world_size):
            end_a, end_b = ctx.Pipe(duplex=True)
            conns_by_rank[a][b] = end_a
            conns_by_rank[b][a] = end_b
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(world_size)]

    all_conns = [
        conn for per_rank in conns_by_rank.values() for conn in per_rank.values()
    ] + [end for pair in result_pipes for end in pair]
    procs = []
    for rank in range(world_size):
        own = set(
            id(c) for c in conns_by_rank[rank].values()
        ) | {id(result_pipes[rank][1])}
        close_conns = [c for c in all_conns if id(c) not in own]
        procs.append(
            ctx.Process(
                target=_process_worker,
                args=(
                    rank,
                    world_size,
                    conns_by_rank[rank],
                    close_conns,
                    result_pipes[rank][1],
                    fn,
                    args,
                    timeout_s,
                ),
                name=f"dist-rank-{rank}",
                daemon=True,
            )
        )
    for proc in procs:
        proc.start()
    # The parent's copies must go too, or peers of a dead rank never
    # see EOF on its pipes.
    for conn in all_conns:
        if not any(conn is recv_end for recv_end, _ in result_pipes):
            conn.close()

    results: list[Any] = [None] * world_size
    for rank, (recv_end, _) in enumerate(result_pipes):
        try:
            if recv_end.poll(join_timeout_s):
                status, payload = recv_end.recv()
                results[rank] = (
                    payload
                    if status == "ok"
                    else DistWorkerError(rank, payload)
                )
            else:
                results[rank] = DistWorkerError(
                    rank, f"no result within {join_timeout_s}s"
                )
        except EOFError:
            results[rank] = DistWorkerError(
                rank, "rank died without reporting a result"
            )
        finally:
            recv_end.close()
    for proc in procs:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    return _collect(results, return_exceptions)


def run_distributed(
    fn: Callable[..., Any],
    world_size: int,
    backend: str = "thread",
    args: Sequence[Any] = (),
    timeout_s: float = DEFAULT_TIMEOUT_S,
    join_timeout_s: float = DEFAULT_JOIN_TIMEOUT_S,
    return_exceptions: bool = False,
) -> list[Any]:
    """Run ``fn(group, *args)`` on every rank; return per-rank results.

    ``timeout_s`` is the per-recv collective deadline handed to each
    rank's group; ``join_timeout_s`` bounds the whole run. See the
    module docstring for backend semantics.
    """
    if backend == "thread":
        return _run_threads(
            fn, world_size, args, timeout_s, join_timeout_s,
            return_exceptions,
        )
    if backend == "process":
        return _run_processes(
            fn, world_size, args, timeout_s, join_timeout_s,
            return_exceptions,
        )
    raise ValueError(f"unknown backend {backend!r} (thread|process)")
