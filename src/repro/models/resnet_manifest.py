"""Analytic ResNet-50 workload for the motivation comparison (Figure 4a).

The paper contrasts CNN and RNN scaling: ResNet-50 throughput *saturates*
with batch size (compute units are full from B~32), while NMT throughput
keeps growing until it hits the memory-capacity wall. We model ResNet-50
with a per-stage FLOP/byte manifest costed on the same device model —
no conv kernels are executed, since only the throughput *curve shape*
participates in the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpumodel import DeviceModel

_LAUNCH_OVERHEAD_SECONDS = 5.5e-6


@dataclass(frozen=True)
class StageSpec:
    """One ResNet stage: FLOPs and activation bytes per image, kernels."""

    name: str
    flops_per_image: float  # forward only
    activation_bytes_per_image: int
    kernels: int  # forward kernel launches (conv + bn + relu + add)


#: Coarse per-stage manifest (forward). FLOPs total ~3.9e9/image, the
#: standard ResNet-50 number; backward multiplies both by ~2.
RESNET50_STAGES = (
    StageSpec("conv1+pool", 0.24e9, 3_211_264, 4),
    StageSpec("stage1 (3 blocks)", 0.68e9, 9_633_792, 33),
    StageSpec("stage2 (4 blocks)", 0.85e9, 6_422_528, 44),
    StageSpec("stage3 (6 blocks)", 1.33e9, 4_816_896, 66),
    StageSpec("stage4 (3 blocks)", 0.73e9, 1_605_632, 33),
    StageSpec("pool+fc", 0.01e9, 16_384, 3),
)

#: Achieved fraction of peak FLOPS for a well-fed conv layer (includes the
#: bandwidth-bound BN/ReLU interludes); calibrated to ~200 img/s training
#: throughput on Titan Xp, the published MXNet number of the era.
_CONV_EFFICIENCY = 0.17

#: Batch size at which conv kernels reach half of that efficiency: small
#: batches underfill the GPU's CTAs (the reason the curve rises at all).
_HALF_EFFICIENCY_BATCH = 10.0


def resnet50_iteration_seconds(
    device: DeviceModel, batch_size: int
) -> float:
    """One training iteration (forward + backward) at this batch size."""
    spec = device.spec
    efficiency = _CONV_EFFICIENCY * batch_size / (
        batch_size + _HALF_EFFICIENCY_BATCH
    )
    kernel_seconds = 0.0
    launches = 0
    for stage in RESNET50_STAGES:
        flops = 3.0 * stage.flops_per_image * batch_size  # fwd + bwd
        nbytes = 5 * stage.activation_bytes_per_image * batch_size
        compute = flops / (spec.peak_flops * efficiency)
        memory = nbytes / spec.dram_bandwidth
        kernel_seconds += max(compute, memory)
        launches += 3 * stage.kernels
    api_seconds = launches * _LAUNCH_OVERHEAD_SECONDS
    return max(kernel_seconds, api_seconds)


def resnet50_throughput(device: DeviceModel, batch_size: int) -> float:
    """Training throughput in images/second."""
    return batch_size / resnet50_iteration_seconds(device, batch_size)
