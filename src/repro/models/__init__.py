"""Workload models (DESIGN.md S9): word LM, NMT, ResNet-50 manifest."""

from repro.models.deepspeech import (
    DeepSpeechConfig,
    DeepSpeechModel,
    build_deepspeech,
    ctc_greedy_decode,
)
from repro.models.nmt import NmtConfig, NmtModel, build_nmt
from repro.models.word_lm import WordLmConfig, WordLmModel, build_word_lm

__all__ = [
    "WordLmConfig",
    "WordLmModel",
    "build_word_lm",
    "DeepSpeechConfig",
    "DeepSpeechModel",
    "build_deepspeech",
    "ctc_greedy_decode",
    "NmtConfig",
    "NmtModel",
    "build_nmt",
]
