"""Sockeye-style NMT model: LSTM encoder-decoder with MLP attention
(paper Section 2.2, Figure 3).

Structure, per the paper:

* **Encoder** — source embedding, a bi-directional first LSTM layer (this
  is where ``SequenceReverse`` appears, Figure 6's pathological operator),
  then uni-directional layers; produces encoder states [B x T_src x H].
* **Attention** — MLP scoring function with layer normalization applied at
  every decoder step against all encoder positions; the O-shape region.
* **Decoder** — target embedding with *input feeding* (the previous
  attention hidden state is concatenated to the embedded token, which is
  why each decoder step instantiates a fresh attention layer), L-layer
  stepwise LSTM, attention-hidden projection.
* **Output** — vocabulary projection + cross-entropy (perplexity).

Also provides encoder-only and single-decoder-step graphs sharing the same
parameters, used by greedy decoding for BLEU evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

import repro.ops as O
from repro.autodiff import TrainingGraph, compile_training
from repro.graph import Tensor, scope
from repro.nn import (
    Backend,
    LstmCell,
    LstmStates,
    MlpAttention,
    DotAttention,
    OutputLayer,
    ParamStore,
    WordEmbedding,
)
from repro.nn.rnn import bidirectional_lstm, lstm_layer, unstack_time


@dataclass(frozen=True)
class NmtConfig:
    """Hyperparameters; defaults follow the paper's primary setting
    (Zhu et al. [71]: H=512, 2 encoder / 2 decoder layers)."""

    src_vocab_size: int = 8000
    tgt_vocab_size: int = 8000
    embed_size: int = 512
    hidden_size: int = 512
    encoder_layers: int = 2
    decoder_layers: int = 2
    src_len: int = 30
    tgt_len: int = 30
    batch_size: int = 64
    dropout: float = 0.0
    backend: Backend = Backend.DEFAULT
    attention: str = "mlp"  # "mlp" | "dot"
    #: paper Section 5.1 — the parallel SequenceReverse fix ("par_rev")
    parallel_reverse: bool = True
    #: hand-annotate the attention scoring function for recomputation (the
    #: precursor EcoRNN workflow); consumed by echo.manual
    manual_recompute_attention: bool = False

    def with_batch_size(self, batch_size: int) -> "NmtConfig":
        return replace(self, batch_size=batch_size)

    def with_backend(self, backend: Backend) -> "NmtConfig":
        return replace(self, backend=backend)

    def __post_init__(self) -> None:
        if self.attention not in ("mlp", "dot"):
            raise ValueError(f"unknown attention type {self.attention!r}")
        if self.hidden_size % 2 != 0:
            raise ValueError("hidden_size must be even (bidirectional encoder)")


@dataclass
class NmtModel:
    config: NmtConfig
    store: ParamStore
    graph: TrainingGraph


def _make_attention(cfg: NmtConfig, store: ParamStore):
    if cfg.attention == "mlp":
        return MlpAttention(store, "attention", cfg.hidden_size,
                            layout=cfg.backend.layout,
                            manual_recompute=cfg.manual_recompute_attention)
    return DotAttention(store, "attention", cfg.hidden_size,
                        layout=cfg.backend.layout)


def _build_encoder_states(
    cfg: NmtConfig, store: ParamStore, src_tokens: Tensor
) -> Tensor:
    """Source tokens [T_src x B] -> encoder states [B x T_src x H]."""
    embedding = WordEmbedding(store, "src_embedding", cfg.src_vocab_size,
                              cfg.embed_size)
    embedded = embedding(src_tokens)
    if cfg.dropout > 0.0:
        embedded = O.dropout(embedded, cfg.dropout, seed=21)
    with scope("rnn"):
        hidden = bidirectional_lstm(
            store, "encoder.l0", embedded, cfg.hidden_size,
            backend=cfg.backend, parallel_reverse=cfg.parallel_reverse,
        )
        for layer in range(1, cfg.encoder_layers):
            hidden, _ = lstm_layer(
                store, f"encoder.l{layer}", hidden, cfg.hidden_size,
                backend=cfg.backend,
            )
    # [T x B x H] -> [B x T x H] for attention
    return O.transpose(hidden, (1, 0, 2))


def _decoder_cells(cfg: NmtConfig, store: ParamStore) -> list[LstmCell]:
    # cuDNN's RNN path only covers whole-sequence layers; the attention
    # decoder is stepwise with input feeding, so the CuDNN variant falls
    # back to framework (unfused) cells there — the reason the paper's
    # CuDNN baseline only gains ~8% on NMT. EcoRNN/Echo's own cell
    # implementation applies everywhere.
    cell_backend = (
        Backend.DEFAULT if cfg.backend is Backend.CUDNN else cfg.backend
    )
    cells = []
    for layer in range(cfg.decoder_layers):
        input_size = (
            cfg.embed_size + cfg.hidden_size if layer == 0 else cfg.hidden_size
        )
        cells.append(
            LstmCell(store, f"decoder.l{layer}", input_size,
                     cfg.hidden_size, backend=cell_backend)
        )
    return cells


def _decoder_step(
    cfg: NmtConfig,
    store: ParamStore,
    cells: list[LstmCell],
    attention,
    att_state,
    emb_t: Tensor,
    att_hidden_prev: Tensor,
    states: list[LstmStates],
) -> tuple[Tensor, list[LstmStates]]:
    """One decoder timestep; returns (attention hidden, new LSTM states)."""
    with scope("rnn"):
        x = O.concat([emb_t, att_hidden_prev], axis=1)
        new_states = []
        for cell, state in zip(cells, states):
            state = cell.step(x, state)
            new_states.append(state)
            x = state.h
    query = new_states[-1].h
    context = attention(query, att_state)
    with scope("attention"):
        w_att = store.get("att_hidden.w", (cfg.hidden_size, 2 * cfg.hidden_size))
        att_hidden = O.tanh(
            O.fully_connected(
                O.concat([query, context], axis=1), w_att,
                layout=cfg.backend.layout,
            )
        )
    return att_hidden, new_states


def build_nmt(config: NmtConfig, store: ParamStore | None = None) -> NmtModel:
    """Construct the full training graph (teacher forcing).

    Placeholders: ``src_tokens`` [T_src x B], ``tgt_tokens`` [T_tgt x B]
    (decoder inputs, i.e. gold prefix), ``tgt_labels`` [T_tgt x B]
    (next-token targets, ``-1`` padding).
    """
    store = store or ParamStore()
    cfg = config
    batch = cfg.batch_size

    src_tokens = O.placeholder((cfg.src_len, batch), np.int64, name="src_tokens")
    tgt_tokens = O.placeholder((cfg.tgt_len, batch), np.int64, name="tgt_tokens")
    tgt_labels = O.placeholder((cfg.tgt_len, batch), np.int64, name="tgt_labels")

    encoder_states = _build_encoder_states(cfg, store, src_tokens)

    attention = _make_attention(cfg, store)
    att_state = attention.precompute(encoder_states)

    tgt_embedding = WordEmbedding(store, "tgt_embedding", cfg.tgt_vocab_size,
                                  cfg.embed_size)
    tgt_embedded = tgt_embedding(tgt_tokens)  # [T_tgt x B x E]
    if cfg.dropout > 0.0:
        tgt_embedded = O.dropout(tgt_embedded, cfg.dropout, seed=23)

    cells = _decoder_cells(cfg, store)
    states = [cell.zero_state(batch) for cell in cells]
    att_hidden = O.zeros((batch, cfg.hidden_size))

    step_outputs: list[Tensor] = []
    embedded_steps = unstack_time(tgt_embedded)
    for t in range(cfg.tgt_len):
        emb_t = embedded_steps[t]
        att_hidden, states = _decoder_step(
            cfg, store, cells, attention, att_state, emb_t, att_hidden, states
        )
        step_outputs.append(O.expand_dims(att_hidden, 0))

    decoder_hidden = O.concat(step_outputs, axis=0)  # [T_tgt x B x H]
    if cfg.dropout > 0.0:
        decoder_hidden = O.dropout(decoder_hidden, cfg.dropout, seed=27)

    output = OutputLayer(store, "output", cfg.hidden_size, cfg.tgt_vocab_size,
                         layout=cfg.backend.layout)
    loss = output.loss(decoder_hidden, tgt_labels)

    graph = compile_training(
        loss,
        params=store.tensors,
        placeholders={
            "src_tokens": src_tokens,
            "tgt_tokens": tgt_tokens,
            "tgt_labels": tgt_labels,
        },
    )
    return NmtModel(config=cfg, store=store, graph=graph)


# ---------------------------------------------------------------------------
# Inference graphs for greedy decoding (BLEU evaluation)
# ---------------------------------------------------------------------------


@dataclass
class DecoderStepGraph:
    """Single decoder step as an executable graph (shared parameters)."""

    outputs: list[Tensor]  # [logits, att_hidden, h0, c0, h1, c1, ...]
    placeholder_names: list[str] = field(default_factory=list)


def build_encoder_inference(cfg: NmtConfig, store: ParamStore) -> Tensor:
    """Encoder states [B x T_src x H] for decoding (same parameters)."""
    src_tokens = O.placeholder((cfg.src_len, cfg.batch_size), np.int64,
                               name="infer_src_tokens")
    return _build_encoder_states(cfg, store, src_tokens)


def build_decoder_step(cfg: NmtConfig, store: ParamStore) -> DecoderStepGraph:
    """One greedy-decode step: consumes the previous token and states."""
    batch = cfg.batch_size
    prev_token = O.placeholder((1, batch), np.int64, name="step_prev_token")
    att_hidden_prev = O.placeholder((batch, cfg.hidden_size),
                                    name="step_att_hidden")
    encoder_states = O.placeholder(
        (batch, cfg.src_len, cfg.hidden_size), name="step_encoder_states"
    )

    attention = _make_attention(cfg, store)
    att_state = attention.precompute(encoder_states)

    tgt_embedding = WordEmbedding(store, "tgt_embedding", cfg.tgt_vocab_size,
                                  cfg.embed_size)
    emb = O.reshape(tgt_embedding(prev_token), (batch, cfg.embed_size))

    cells = _decoder_cells(cfg, store)
    states = []
    names = ["step_prev_token", "step_att_hidden", "step_encoder_states"]
    for layer in range(cfg.decoder_layers):
        h = O.placeholder((batch, cfg.hidden_size), name=f"step_h{layer}")
        c = O.placeholder((batch, cfg.hidden_size), name=f"step_c{layer}")
        names += [f"step_h{layer}", f"step_c{layer}"]
        states.append(LstmStates(h=h, c=c))

    att_hidden, new_states = _decoder_step(
        cfg, store, cells, attention, att_state, emb, att_hidden_prev, states
    )
    output = OutputLayer(store, "output", cfg.hidden_size, cfg.tgt_vocab_size,
                         layout=cfg.backend.layout)
    logits = output.logits(O.expand_dims(att_hidden, 0))  # [B x V]

    outputs = [logits, att_hidden]
    for st in new_states:
        outputs += [st.h, st.c]
    return DecoderStepGraph(outputs=outputs, placeholder_names=names)
