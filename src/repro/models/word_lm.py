"""Word-level language model (paper Section 2.1, Figure 2).

Embedding -> L-layer LSTM -> vocabulary projection -> perplexity loss, the
workload the paper uses to evaluate the data layout optimization (its
runtime is almost pure LSTM, free of the NMT model's many tiny decoder
kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

import repro.ops as O
from repro.autodiff import TrainingGraph, compile_training
from repro.graph import scope
from repro.graph import Tensor
from repro.nn import Backend, OutputLayer, ParamStore, WordEmbedding
from repro.nn.rnn import gru_layer, lstm_layer, multilayer_lstm


@dataclass(frozen=True)
class WordLmConfig:
    """Hyperparameters of the language model (MXNet word_lm defaults)."""

    vocab_size: int = 10000
    embed_size: int = 512
    hidden_size: int = 512
    num_layers: int = 2
    seq_len: int = 35
    batch_size: int = 32
    dropout: float = 0.0
    backend: Backend = Backend.DEFAULT
    #: recurrent cell type: "lstm" (default), "gru" (3 gates), or
    #: "lstm_peephole" (Gers & Schmidhuber; unfused-only, as on real GPUs)
    cell: str = "lstm"

    def with_backend(self, backend: Backend) -> "WordLmConfig":
        return replace(self, backend=backend)

    def __post_init__(self) -> None:
        if self.vocab_size < 2 or self.hidden_size < 1:
            raise ValueError("degenerate model configuration")
        if self.cell not in ("lstm", "gru", "lstm_peephole"):
            raise ValueError(f"unknown cell type {self.cell!r}")


@dataclass
class WordLmModel:
    """A built language model: training graph + parameter store."""

    config: WordLmConfig
    store: ParamStore
    graph: TrainingGraph


def _recurrent_stack(
    store: ParamStore, cfg: WordLmConfig, embedded: Tensor
) -> Tensor:
    """The configured recurrent layers over [T x B x E]."""
    if cfg.cell == "lstm":
        hidden, _ = multilayer_lstm(
            store, "lstm", embedded, cfg.hidden_size, cfg.num_layers,
            backend=cfg.backend, dropout=cfg.dropout,
        )
        return hidden
    current = embedded
    for layer in range(cfg.num_layers):
        if cfg.cell == "gru":
            current = gru_layer(
                store, f"gru.l{layer}", current, cfg.hidden_size,
                backend=cfg.backend,
            )
        else:  # lstm_peephole
            current, _ = lstm_layer(
                store, f"lstm.l{layer}", current, cfg.hidden_size,
                backend=cfg.backend, peephole=True,
            )
        if cfg.dropout > 0.0 and layer < cfg.num_layers - 1:
            current = O.dropout(current, cfg.dropout, seed=31 + layer)
    return current


def build_word_lm(
    config: WordLmConfig, store: ParamStore | None = None
) -> WordLmModel:
    """Construct the training graph for one iteration.

    Placeholders: ``tokens`` and ``labels``, both [T x B] int64 (labels are
    the next-token targets; ``-1`` marks padding).
    """
    store = store or ParamStore()
    cfg = config

    tokens = O.placeholder((cfg.seq_len, cfg.batch_size), np.int64, name="tokens")
    labels = O.placeholder((cfg.seq_len, cfg.batch_size), np.int64, name="labels")

    embedding = WordEmbedding(store, "embedding", cfg.vocab_size, cfg.embed_size)
    embedded = embedding(tokens)  # [T x B x E]
    if cfg.dropout > 0.0:
        embedded = O.dropout(embedded, cfg.dropout, seed=11)

    with scope("rnn"):
        hidden = _recurrent_stack(store, cfg, embedded)
    if cfg.dropout > 0.0:
        hidden = O.dropout(hidden, cfg.dropout, seed=13)

    output = OutputLayer(
        store, "output", cfg.hidden_size, cfg.vocab_size,
        layout=cfg.backend.layout,
    )
    loss = output.loss(hidden, labels)

    graph = compile_training(
        loss,
        params=store.tensors,
        placeholders={"tokens": tokens, "labels": labels},
    )
    return WordLmModel(config=cfg, store=store, graph=graph)
