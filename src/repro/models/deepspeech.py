"""DeepSpeech2-style speech recognition model (Echo's second workload).

Convolutional spectrogram front-end, a stack of bidirectional LSTM layers,
a per-frame vocabulary projection, and CTC loss — the LSTM-heavy ASR
architecture the Echo paper evaluates alongside NMT. The recurrent stack
dominates both runtime and stash, so the pass's wins carry over from the
translation workload; the convolution front-end adds non-recomputable
(GEMM-class) nodes that the candidate mining must route around.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

import repro.ops as O
from repro.autodiff import TrainingGraph, compile_training
from repro.graph import Tensor, scope
from repro.nn import Backend, OutputLayer, ParamStore
from repro.nn.rnn import bidirectional_lstm


@dataclass(frozen=True)
class DeepSpeechConfig:
    """Hyperparameters of the scaled DS2 model."""

    vocab_size: int = 29  # 26 letters + apostrophe/space + blank(0)
    feat_dim: int = 40  # spectrogram bins
    num_frames: int = 50  # input frames T
    conv_channels: int = 32
    hidden_size: int = 256
    num_layers: int = 3
    max_label_len: int = 12
    batch_size: int = 16
    backend: Backend = Backend.CUDNN

    def with_backend(self, backend: Backend) -> "DeepSpeechConfig":
        return replace(self, backend=backend)

    @property
    def conv_frames(self) -> int:
        """Frames after the stride-2 convolution."""
        return (self.num_frames + 2 * 1 - 3) // 2 + 1

    @property
    def conv_feat(self) -> int:
        return (self.feat_dim + 2 * 1 - 3) // 2 + 1

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("need at least blank + one label")
        if self.max_label_len > self.conv_frames // 2:
            raise ValueError(
                "transcripts too long to align: "
                f"{self.max_label_len} labels vs {self.conv_frames} frames"
            )


@dataclass
class DeepSpeechModel:
    config: DeepSpeechConfig
    store: ParamStore
    graph: TrainingGraph
    #: per-frame logits [T' x B x V], kept for decoding
    logits: Tensor


def build_deepspeech(
    config: DeepSpeechConfig, store: ParamStore | None = None
) -> DeepSpeechModel:
    """Training graph: features [T x B x F] + labels [B x L] -> CTC loss."""
    store = store or ParamStore()
    cfg = config
    batch = cfg.batch_size

    features = O.placeholder((cfg.num_frames, batch, cfg.feat_dim),
                             name="features")
    labels = O.placeholder((batch, cfg.max_label_len), np.int64,
                           name="ctc_labels")

    with scope("conv"):
        # [T x B x F] -> [B x 1 x T x F]
        image = O.expand_dims(O.transpose(features, (1, 0, 2)), 1)
        w1 = store.get("conv1.w", (cfg.conv_channels, 1, 3, 3))
        b1 = store.get("conv1.b", (cfg.conv_channels,), init="zeros")
        conv1 = O.relu(O.conv2d(image, w1, b1, stride=2, pad=1))
        w2 = store.get("conv2.w",
                       (cfg.conv_channels, cfg.conv_channels, 3, 3))
        b2 = store.get("conv2.b", (cfg.conv_channels,), init="zeros")
        conv2 = O.relu(O.conv2d(conv1, w2, b2, stride=1, pad=1))
        # [B x C x T' x F'] -> [T' x B x C*F']
        frames = O.reshape(
            O.transpose(conv2, (2, 0, 1, 3)),
            (cfg.conv_frames, batch, cfg.conv_channels * cfg.conv_feat),
        )

    with scope("rnn"):
        hidden = frames
        for layer in range(cfg.num_layers):
            hidden = bidirectional_lstm(
                store, f"birnn.l{layer}", hidden, cfg.hidden_size,
                backend=cfg.backend,
            )

    output = OutputLayer(store, "output", cfg.hidden_size, cfg.vocab_size,
                         layout=cfg.backend.layout)
    flat_logits = output.logits(hidden)  # [T'*B x V]
    logits = O.reshape(
        flat_logits, (cfg.conv_frames, batch, cfg.vocab_size)
    )
    with scope("output"):
        loss = O.ctc_loss(logits, labels)

    graph = compile_training(
        loss,
        params=store.tensors,
        placeholders={"features": features, "ctc_labels": labels},
        extra_outputs={"logits": logits},
    )
    return DeepSpeechModel(config=cfg, store=store, graph=graph,
                           logits=logits)


def ctc_greedy_decode(logits: np.ndarray, blank: int = 0) -> list[list[int]]:
    """Best-path decoding: per-frame argmax, collapse repeats, drop blanks.

    ``logits`` is [T x B x V]; returns one token list per batch lane.
    """
    best = logits.argmax(axis=-1)  # [T x B]
    results = []
    for b in range(best.shape[1]):
        tokens = []
        previous = blank
        for symbol in best[:, b]:
            if symbol != blank and symbol != previous:
                tokens.append(int(symbol))
            previous = symbol
        results.append(tokens)
    return results
