"""Backend registry and transparent autotuning (DESIGN.md S12)."""

from repro.backends.microbench import (
    AutotuneReport,
    LstmBenchResult,
    autotune_backend,
    benchmark_lstm,
    pure_lstm_graph,
)
from repro.nn.rnn import Backend

__all__ = [
    "Backend",
    "autotune_backend",
    "AutotuneReport",
    "benchmark_lstm",
    "LstmBenchResult",
    "pure_lstm_graph",
]
