"""Pure-LSTM microbenchmark and the transparent backend autotuner.

The paper keeps one user-facing LSTM interface and picks the backend
(Default / CuDNN / EcoRNN) by running a milliseconds-long microbenchmark on
the user's hyperparameters before training starts (Figure 11, Section
5.4). Table 2 shows the microbenchmark's inverse runtime correlates >0.95
with end-to-end training throughput, which is what makes the transparent
selection safe. Both pieces live here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

import repro.ops as O
from repro.autodiff import TrainingGraph, compile_training
from repro.echo import EchoPass
from repro.graph import Stage, scope
from repro.gpumodel import DeviceModel
from repro.nn import Backend, ParamStore
from repro.nn.rnn import multilayer_lstm

# Shared robust-timing reducer (best-of-k + IQR fence): the same statistic
# guards the host microbenchmark here and the calibration harvest, so
# scheduler jitter poisons neither.
from repro.pgo.records import RobustTiming, robust_best
from repro.runtime import TrainingExecutor


@dataclass(frozen=True)
class LstmBenchResult:
    """Simulated timings for one backend at one hyperparameter point."""

    backend: Backend
    forward_seconds: float
    backward_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


def pure_lstm_graph(
    batch_size: int,
    hidden_size: int,
    num_layers: int,
    seq_len: int,
    backend: Backend,
    input_size: int | None = None,
) -> tuple[TrainingGraph, ParamStore]:
    """Training graph containing only LSTM layers (no embedding/attention/
    output), as the paper's C++ microbenchmark does."""
    store = ParamStore()
    inputs = O.placeholder(
        (seq_len, batch_size, input_size or hidden_size), name="lstm_in"
    )
    with scope("rnn"):
        hidden, _ = multilayer_lstm(
            store, "bench", inputs, hidden_size, num_layers, backend=backend
        )
    loss = O.reduce_mean(hidden)
    graph = compile_training(loss, store.tensors, {"lstm_in": inputs})
    return graph, store


def benchmark_lstm(
    batch_size: int,
    hidden_size: int,
    num_layers: int,
    seq_len: int,
    backend: Backend,
    device: DeviceModel | None = None,
    apply_echo: bool = True,
) -> LstmBenchResult:
    """Cost one pure-LSTM training iteration on the device model.

    Forward/backward are split by node stage; each side is bound by the
    larger of its kernel and launch streams (the Default backend's forward
    is launch-bound, which is the whole point of Figure 7).
    """
    device = device or DeviceModel()
    graph, _ = pure_lstm_graph(
        batch_size, hidden_size, num_layers, seq_len, backend
    )
    if backend is Backend.ECHO and apply_echo:
        EchoPass(device=device).run(graph)
    executor = TrainingExecutor(graph, device=device)
    result = executor.simulate_cost()

    fwd_kernel = fwd_api = bwd_kernel = bwd_api = 0.0
    for t in result.timings:
        if t.node.stage is Stage.FORWARD:
            fwd_kernel += t.kernel_seconds
            fwd_api += t.api_seconds
        else:
            bwd_kernel += t.kernel_seconds
            bwd_api += t.api_seconds

    # cuDNN executes multi-layer RNNs as a diagonal wavefront: cell (t, l)
    # overlaps with (t+1, l-1), hiding part of the per-layer serialization.
    # Our graph executor is sequential, so credit the overlap analytically;
    # this is why cuDNN edges out the layout optimization on some deep
    # configurations (paper Figure 20, "within 20%").
    overlap = 1.0
    if backend is Backend.CUDNN and num_layers > 1:
        overlap = 1.0 - 0.03 * min(num_layers - 1, 2)
    return LstmBenchResult(
        backend=backend,
        forward_seconds=max(fwd_kernel, fwd_api) * overlap,
        backward_seconds=max(bwd_kernel, bwd_api) * overlap,
    )


@dataclass(frozen=True)
class MeasuredLstmResult:
    """Host wall-clock of one backend's iteration, robust-reduced.

    The *measured* counterpart of :class:`LstmBenchResult`: real numpy
    kernel time on this host, reported as best-of-k inside an
    interquartile fence (a single descheduled run cannot poison the
    number — the fix the calibration records depend on).
    """

    backend: Backend
    timing: RobustTiming

    @property
    def total_seconds(self) -> float:
        return self.timing.seconds


def measure_lstm(
    batch_size: int,
    hidden_size: int,
    num_layers: int,
    seq_len: int,
    backend: Backend,
    repeats: int = 5,
    device: DeviceModel | None = None,
    apply_echo: bool = True,
    seed: int = 0,
) -> MeasuredLstmResult:
    """Run the pure-LSTM iteration on the host and time it, best-of-k.

    One warmup iteration (first-touch allocation, arena population) is
    excluded, then ``repeats`` timed iterations feed :func:`robust_best`.
    Deterministic feeds, so every iteration does identical work.
    """
    graph, store = pure_lstm_graph(
        batch_size, hidden_size, num_layers, seq_len, backend
    )
    if backend is Backend.ECHO and apply_echo:
        EchoPass(device=device).run(graph)
    executor = TrainingExecutor(graph, device=device)
    params = store.initialize()
    rng = np.random.default_rng(seed)
    feeds = {
        "lstm_in": rng.standard_normal(
            (seq_len, batch_size, hidden_size), dtype=np.float32
        )
    }
    executor.run(feeds, params)  # warmup
    samples = []
    for _ in range(max(1, int(repeats))):
        start = time.perf_counter()
        executor.run(feeds, params)
        samples.append(time.perf_counter() - start)
    return MeasuredLstmResult(backend=backend, timing=robust_best(samples))


@dataclass
class AutotuneReport:
    """Outcome of the pre-training backend selection."""

    choice: Backend
    results: dict[Backend, LstmBenchResult]

    def format(self) -> str:
        lines = ["autotuning microbenchmark:"]
        for backend, res in self.results.items():
            marker = " <-- selected" if backend is self.choice else ""
            lines.append(
                f"  {backend.value:<8} fwd {res.forward_seconds * 1e3:7.3f} ms  "
                f"bwd {res.backward_seconds * 1e3:7.3f} ms  "
                f"total {res.total_seconds * 1e3:7.3f} ms{marker}"
            )
        return "\n".join(lines)


def autotune_backend(
    batch_size: int,
    hidden_size: int,
    num_layers: int,
    seq_len: int,
    device: DeviceModel | None = None,
    store: Any = None,
) -> AutotuneReport:
    """Run the microbenchmark for all backends and pick the fastest.

    This is the transparent dispatch of Section 5.4: callers build their
    model with ``report.choice`` and never name a backend themselves.

    Results persist to the tuning store (``store``, defaulting to the
    ``REPRO_TUNE_DIR`` store when set), keyed by hyperparameters and the
    device's cache token — a warm process skips the microbenchmark
    entirely, and recalibration (which changes the token of calibrated
    devices) re-tunes automatically.
    """
    if store is None:
        from repro.pgo.store import default_store

        store = default_store()
    if device is None:
        from repro.pgo.calibrated import default_device

        device = default_device()
    token = getattr(device, "cache_token", (device.spec.name, "analytic"))
    key = (
        f"lstm:b{batch_size}:h{hidden_size}:l{num_layers}:s{seq_len}:"
        + "-".join(str(p) for p in token)
    )
    if store is not None:
        entry = store.load_autotune(key)
        report = _autotune_from_payload(entry)
        if report is not None:
            return report
    results = {
        backend: benchmark_lstm(
            batch_size, hidden_size, num_layers, seq_len, backend, device
        )
        for backend in Backend
    }
    choice = min(results, key=lambda b: results[b].total_seconds)
    report = AutotuneReport(choice=choice, results=results)
    if store is not None:
        store.save_autotune(
            key,
            {
                "choice": choice.value,
                "results": {
                    b.value: [r.forward_seconds, r.backward_seconds]
                    for b, r in results.items()
                },
            },
        )
    return report


def _autotune_from_payload(entry: Any) -> AutotuneReport | None:
    """Rebuild an :class:`AutotuneReport` from a persisted entry."""
    if not isinstance(entry, dict):
        return None
    try:
        choice = Backend(entry["choice"])
        results = {
            Backend(name): LstmBenchResult(
                backend=Backend(name),
                forward_seconds=float(fwd),
                backward_seconds=float(bwd),
            )
            for name, (fwd, bwd) in entry["results"].items()
        }
    except (KeyError, ValueError, TypeError):
        return None
    if choice not in results:
        return None
    return AutotuneReport(choice=choice, results=results)
