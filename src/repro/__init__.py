"""Echo: compiler-based GPU memory footprint reduction for LSTM RNN
training — a full-system reproduction (see DESIGN.md).

Public API highlights:

>>> import repro
>>> model = repro.build_nmt(repro.NmtConfig())
>>> report = repro.optimize(model.graph)   # the Echo pass
>>> executor = repro.TrainingExecutor(model.graph)
"""

from repro.autodiff import TrainingGraph, compile_training
from repro.echo import EchoConfig, EchoPass, EchoReport, optimize
from repro.gpumodel import (
    ALL_DEVICES,
    RTX_2080_TI,
    TITAN_V,
    TITAN_XP,
    DeviceModel,
    DeviceSpec,
)
from repro.layout import Layout
from repro.models import (
    NmtConfig,
    NmtModel,
    WordLmConfig,
    WordLmModel,
    build_nmt,
    build_word_lm,
)
from repro.nn import Backend, ParamStore
from repro.profiler import profile_memory, profile_runtime
from repro.runtime import GraphExecutor, TrainingExecutor
from repro.train import SGD, Adam, GreedyDecoder, Trainer, corpus_bleu, perplexity

__version__ = "1.0.0"

__all__ = [
    "compile_training",
    "TrainingGraph",
    "EchoPass",
    "EchoConfig",
    "EchoReport",
    "optimize",
    "DeviceModel",
    "DeviceSpec",
    "TITAN_XP",
    "TITAN_V",
    "RTX_2080_TI",
    "ALL_DEVICES",
    "Layout",
    "Backend",
    "ParamStore",
    "NmtConfig",
    "NmtModel",
    "build_nmt",
    "WordLmConfig",
    "WordLmModel",
    "build_word_lm",
    "profile_memory",
    "profile_runtime",
    "GraphExecutor",
    "TrainingExecutor",
    "Trainer",
    "Adam",
    "SGD",
    "GreedyDecoder",
    "corpus_bleu",
    "perplexity",
    "__version__",
]
