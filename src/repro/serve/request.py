"""Request/response types and errors for the inference server.

A :class:`Request` is one client call — translate a source sentence or
score a (source, target) pair — annotated with everything the admission
and batching layers need: its length bucket, arrival time, and optional
deadline. Results travel back through a ``concurrent.futures.Future``,
so submitters can block, poll, or attach callbacks without the server
caring which.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.data.bucketing import BucketSpec

__all__ = [
    "RequestKind",
    "Request",
    "ServeError",
    "QueueFullError",
    "DeadlineExceeded",
    "ServerClosed",
]


class ServeError(RuntimeError):
    """Base class for serving-layer failures delivered through futures."""


class QueueFullError(ServeError):
    """Admission refused: the bounded request queue is at capacity."""


class DeadlineExceeded(ServeError):
    """The request's deadline passed before a batch could run it."""


class ServerClosed(ServeError):
    """The server is shut down (or shutting down) and not accepting work."""


class RequestKind(Enum):
    TRANSLATE = "translate"
    SCORE = "score"


_ids = itertools.count()


@dataclass
class Request:
    """One admitted inference request.

    ``tokens`` is the source sentence; ``targets`` is required for SCORE
    requests (the token sequence to be teacher-force scored). ``max_len``
    caps TRANSLATE output length (defaults to the bucket's target
    length). ``deadline_s`` is an absolute ``time.monotonic()`` instant
    after which the request is shed instead of run.
    """

    kind: RequestKind
    tokens: Sequence[int]
    targets: Sequence[int] | None = None
    max_len: int | None = None
    deadline_s: float | None = None
    request_id: int = field(default_factory=lambda: next(_ids))
    bucket: BucketSpec | None = None  # assigned at admission
    enqueued_s: float = 0.0  # assigned at admission
    future: Future = field(default_factory=Future)

    def __post_init__(self) -> None:
        if self.kind is RequestKind.SCORE and self.targets is None:
            raise ValueError("SCORE requests need a target token sequence")
        if not len(self.tokens):
            raise ValueError("empty source sentence")

    @property
    def batch_key(self) -> tuple:
        """Requests coalesce only within one (kind, bucket) group: one
        compiled plan shape, one decode loop."""
        return (self.kind, self.bucket)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline_s

    def latency_s(self, now: float | None = None) -> float:
        return (time.monotonic() if now is None else now) - self.enqueued_s
