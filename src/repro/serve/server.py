"""The inference server: admission control, dispatch loop, lifecycle.

Architecture (one box per module):

    clients (N threads) --submit()--> RequestQueue (bounded, backpressure)
                                          |
                                     MicroBatcher (coalesce by kind+bucket,
                                          |         max-batch / max-wait)
                                   dispatcher thread (one; owns the arena)
                                          |
                                   InferenceSession.run_batch
                                          |
                                   futures resolve --> clients

Concurrency model: *admission is concurrent, execution is serial.* Any
number of client threads submit; one dispatcher thread runs compiled
plans (they share an arena, like a single GPU's memory pool, so batches
must not overlap). Because micro-batches are row-independent, serialized
batched execution still gives every client the exact output of a private
sequential decode — coalescing buys throughput, not approximation.

Lifecycle: ``start`` spawns the dispatcher; ``drain`` stops admissions
and waits for in-flight work; ``shutdown(drain=False)`` additionally
fails whatever is still queued with :class:`ServerClosed`. The server is
a context manager (drains on clean exit).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import BatchPolicy, MicroBatcher, RequestQueue
from repro.serve.request import (
    DeadlineExceeded,
    Request,
    RequestKind,
    ServerClosed,
)
from repro.serve.session import InferenceSession
from repro.serve.stats import ServerStats

__all__ = ["InferenceServer"]


class InferenceServer:
    """Dynamic micro-batching server over an :class:`InferenceSession`."""

    def __init__(
        self,
        session: InferenceSession,
        policy: BatchPolicy | None = None,
        default_deadline_ms: float | None = None,
        warmup: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.session = session
        self.policy = policy or BatchPolicy(
            max_batch_size=session.max_batch_size
        )
        if self.policy.max_batch_size > session.max_batch_size:
            raise ValueError(
                f"policy batch size {self.policy.max_batch_size} exceeds "
                f"session compiled batch {session.max_batch_size}"
            )
        self.default_deadline_ms = default_deadline_ms
        if metrics is None:
            metrics = obs_metrics.registry()
        self.stats = ServerStats(metrics=metrics)
        self.queue = RequestQueue(self.policy.max_queue_depth)
        self.batcher = MicroBatcher(self.queue, self.policy)
        self._warmup_on_start = warmup
        self._dispatcher: threading.Thread | None = None
        self._accepting = False
        # In-flight accounting shares the queue's lock: the batcher's
        # on_take hook increments it in the same critical section that
        # removes requests, so drain's "queued + in-flight == 0" check
        # can never miss a batch in the removal gap.
        self._inflight = 0
        self._idle = threading.Condition(self.queue._lock)
        self.warmup_report: dict | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        if self._warmup_on_start:
            self.warmup_report = self.session.warmup()
        # Post-warmup mark: serving traffic from here on must be all
        # plan-cache hits if warmup covered the bucket table.
        self.stats.mark_cache(self.session.plan_cache)
        self._accepting = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admissions; wait until queued + in-flight work finishes.

        Returns True when fully drained within ``timeout``.
        """
        self._accepting = False
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self.queue._items or self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Wait until no work is queued or in flight; admissions stay open.

        The event-driven replacement for "sleep long enough for the
        server to catch up" in tests: returns True the moment the last
        dispatched batch resolves (within ``timeout``).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self.queue._items or self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the server. With ``drain``, finish queued work first;
        without, fail still-queued requests with :class:`ServerClosed`."""
        self._accepting = False
        if drain and self._dispatcher is not None:
            self.drain(timeout)
        self.queue.close()
        for req in self.queue.drain_pending():
            req.future.set_exception(ServerClosed("server shut down"))
            self.stats.on_failure()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- admission ----------------------------------------------------------

    def submit(
        self,
        tokens: Sequence[int],
        kind: RequestKind = RequestKind.TRANSLATE,
        targets: Sequence[int] | None = None,
        max_len: int | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = 0.0,
    ) -> Future:
        """Admit one request; returns a future resolving to its result.

        Raises :class:`ServerClosed` when not accepting, ``ValueError``
        when no bucket fits, :class:`QueueFullError` on backpressure
        (after waiting up to ``timeout`` for space).
        """
        if not self._accepting:
            raise ServerClosed("server is not accepting requests")
        deadline_ms = (
            deadline_ms if deadline_ms is not None else self.default_deadline_ms
        )
        request = Request(
            kind=kind, tokens=tokens, targets=targets, max_len=max_len,
            deadline_s=(
                time.monotonic() + deadline_ms / 1000.0
                if deadline_ms is not None else None
            ),
        )
        with obs_trace.span(
            "serve.enqueue", "serve",
            {"kind": kind.name, "tokens": len(tokens)},
        ) as sp:
            try:
                request.bucket = self.session.bucket_for_length(len(tokens))
            except ValueError:
                self.stats.on_reject_invalid()
                raise
            try:
                depth = self.queue.put(request, timeout=timeout)
            except Exception:
                self.stats.on_reject_full()
                raise
            sp["depth"] = depth
        self.stats.on_submit(depth)
        return request.future

    def translate(self, tokens: Sequence[int], **kwargs) -> list[int]:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(tokens, RequestKind.TRANSLATE, **kwargs).result()

    def score(self, tokens: Sequence[int], targets: Sequence[int],
              **kwargs) -> float:
        return self.submit(
            tokens, RequestKind.SCORE, targets=targets, **kwargs
        ).result()

    # -- dispatch -----------------------------------------------------------

    def _on_take(self, planned) -> None:
        # Runs under the queue lock, inside the batcher's removal section.
        self._inflight += len(planned.requests) + len(planned.shed)

    def _dispatch_loop(self) -> None:
        while True:
            planned = self.batcher.next_batch(on_take=self._on_take)
            if planned is None:
                return
            taken = len(planned.requests) + len(planned.shed)
            try:
                for req in planned.shed:
                    req.future.set_exception(DeadlineExceeded(
                        f"request {req.request_id} queued past its deadline"
                    ))
                if planned.shed:
                    self.stats.on_shed(len(planned.shed))
                if planned.requests:
                    self._run_planned(planned.requests)
            finally:
                with self._idle:
                    self._inflight -= taken
                    self._idle.notify_all()

    def _run_planned(self, requests: list[Request]) -> None:
        head = requests[0]
        try:
            with obs_trace.span(
                "serve.decode", "serve",
                {"kind": head.kind.name, "bucket": str(head.bucket),
                 "occupancy": len(requests)},
            ):
                results = self.session.run_batch(
                    head.kind, head.bucket, requests
                )
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            for req in requests:
                if not req.future.done():
                    req.future.set_exception(exc)
            self.stats.on_failure(len(requests))
            return
        with obs_trace.span(
            "serve.respond", "serve", {"occupancy": len(requests)}
        ):
            now = time.monotonic()
            latencies = []
            for req, result in zip(requests, results):
                req.future.set_result(result)
                latencies.append(req.latency_s(now) * 1000.0)
        self.stats.on_batch(len(requests), latencies)

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        return self.stats.format_report(self.session.plan_cache)

    def snapshot(self) -> dict:
        return self.stats.snapshot(self.session.plan_cache)
