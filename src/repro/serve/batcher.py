"""Bounded request queue and dynamic micro-batching policy.

The queue is a bounded FIFO with condition-variable signalling; admission
past capacity is *backpressure* — the submitter either waits (bounded by
``timeout``) or gets :class:`QueueFullError`. The batcher implements the
classic dynamic-batching policy (Clipper/Triton style): the oldest
pending request defines the batch group — its ``(kind, bucket)`` pair,
i.e. one compiled plan shape — and the batch closes when either
``max_batch_size`` same-group requests have coalesced or the head request
has waited ``max_wait_ms``. Requests whose deadline lapsed while queued
are shed at dispatch time, before any compute is spent on them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs import trace as obs_trace
from repro.serve.request import QueueFullError, Request, ServerClosed

__all__ = ["BatchPolicy", "RequestQueue", "MicroBatcher", "PlannedBatch"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the coalescing policy.

    ``max_batch_size`` must not exceed the session's compiled batch
    shape; ``max_wait_ms`` trades first-token latency for occupancy;
    ``max_queue_depth`` bounds memory and is the backpressure threshold.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")


class RequestQueue:
    """Bounded FIFO of admitted requests, safe for many producers."""

    def __init__(self, max_depth: int) -> None:
        self.max_depth = max_depth
        self._items: deque[Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, request: Request, timeout: float | None = 0.0) -> int:
        """Admit ``request``; returns the queue depth after admission.

        ``timeout`` bounds how long to wait for space: ``0`` refuses
        immediately when full (pure backpressure), ``None`` waits
        forever.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while True:
                if self._closed:
                    raise ServerClosed("queue is closed")
                if len(self._items) < self.max_depth:
                    break
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise QueueFullError(
                        f"queue at capacity ({self.max_depth})"
                    )
                self._not_full.wait(remaining)
            request.enqueued_s = time.monotonic()
            self._items.append(request)
            depth = len(self._items)
            self._not_empty.notify()
            return depth

    def close(self) -> None:
        """Stop admissions and wake any waiter (drain continues)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (shutdown path)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return items

@dataclass
class PlannedBatch:
    """One dispatch decision: run ``requests``, fail ``shed``."""

    requests: list[Request]
    shed: list[Request]

    @property
    def occupancy(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Coalesces queued requests into per-(kind, bucket) micro-batches.

    ``on_batch_close(planned)`` — when set — fires *outside* the queue
    lock, immediately after a batch (or a shed-only verdict) is taken.
    It exists for event-driven synchronization: tests wait on a batch
    actually closing instead of sleeping past an estimated coalescing
    window.
    """

    def __init__(self, queue: RequestQueue, policy: BatchPolicy) -> None:
        self.queue = queue
        self.policy = policy
        self.on_batch_close = None

    def next_batch(self, on_take=None) -> PlannedBatch | None:
        """Block for the next dispatchable batch; None = queue closed dry."""
        planned = self._next_batch(on_take)
        if planned is not None:
            with obs_trace.span(
                "serve.batch_close", "serve",
                {"occupancy": planned.occupancy, "shed": len(planned.shed)},
            ):
                pass
            callback = self.on_batch_close
            if callback is not None:
                callback(planned)
        return planned

    def _next_batch(self, on_take=None) -> PlannedBatch | None:
        """Block for the next dispatchable batch; None = queue closed dry.

        ``on_take(planned)`` runs under the queue lock in the same
        critical section that removes the batch, so in-flight accounting
        (the server's drain barrier) can never observe removed-but-
        uncounted requests.

        The head-of-line request pins the batch group. While the group is
        under ``max_batch_size`` and the head has waited less than
        ``max_wait_ms``, the batcher sleeps on the condition variable so
        late arrivals can coalesce; requests already past their deadline
        are shed (returned separately, never run). Collection preserves
        FIFO order within the group; other groups keep their queue
        positions for the next cycle.
        """
        max_size = self.policy.max_batch_size
        max_wait = self.policy.max_wait_ms / 1000.0
        shed: list[Request] = []
        with self.queue._not_empty:
            while True:
                # Shed from the front so an expired head never pins the
                # group choice (or the wait window) for live requests.
                now = time.monotonic()
                while self.queue._items and self.queue._items[0].expired(now):
                    shed.append(self.queue._items.popleft())
                if not self.queue._items:
                    if self.queue._closed or shed:
                        # Deliver shed verdicts (or exit on a dry close).
                        planned = PlannedBatch(requests=[], shed=shed)
                        if shed and on_take is not None:
                            on_take(planned)
                        return planned if shed else None
                    self.queue._not_empty.wait()
                    continue

                head = self.queue._items[0]
                key = head.batch_key
                group = [
                    r for r in self.queue._items
                    if r.batch_key == key and not r.expired(now)
                ]
                close_at = head.enqueued_s + max_wait
                if len(group) >= max_size or now >= close_at \
                        or self.queue._closed:
                    chosen = group[:max_size]
                    chosen_ids = {id(r) for r in chosen}
                    expired = [
                        r for r in self.queue._items
                        if r.expired(now) and id(r) not in chosen_ids
                    ]
                    shed.extend(expired)
                    drop = chosen_ids | {id(r) for r in expired}
                    remaining = deque(
                        r for r in self.queue._items if id(r) not in drop
                    )
                    self.queue._items.clear()
                    self.queue._items.extend(remaining)
                    self.queue._not_full.notify_all()
                    planned = PlannedBatch(requests=chosen, shed=shed)
                    if on_take is not None:
                        on_take(planned)
                    return planned
                self.queue._not_empty.wait(close_at - now)
