"""Inference serving: dynamic bucketed micro-batching over compiled plans.

The serving subsystem turns a trained model into a request-serving
engine (ROADMAP north star: "serving heavy traffic"). Pieces:

* :mod:`repro.serve.request` — request/response types, deadlines, errors;
* :mod:`repro.serve.batcher` — bounded :class:`RequestQueue` with
  backpressure + :class:`MicroBatcher` coalescing same-(kind, bucket)
  requests under a max-batch / max-wait policy;
* :mod:`repro.serve.session` — :class:`InferenceSession`: per-bucket
  forward-only compiled plans (shared arena, thread-safe plan cache)
  with an explicit warmup API;
* :mod:`repro.serve.server` — :class:`InferenceServer`: admission
  control, deadline shedding, one dispatcher thread, drain/shutdown;
* :mod:`repro.serve.stats` — :class:`ServerStats`: p50/p95/p99 latency,
  queue depth, batch occupancy, shed counts, plan-cache hit rate.

See DESIGN.md §7 for the policy discussion and the determinism argument
(micro-batched outputs are bitwise-identical to sequential decode).
"""

from repro.serve.batcher import (
    BatchPolicy,
    MicroBatcher,
    PlannedBatch,
    RequestQueue,
)
from repro.serve.request import (
    DeadlineExceeded,
    QueueFullError,
    Request,
    RequestKind,
    ServeError,
    ServerClosed,
)
from repro.serve.server import InferenceServer
from repro.serve.session import InferenceSession
from repro.serve.stats import ServerStats, percentile

__all__ = [
    "BatchPolicy",
    "RequestQueue",
    "MicroBatcher",
    "PlannedBatch",
    "Request",
    "RequestKind",
    "ServeError",
    "QueueFullError",
    "DeadlineExceeded",
    "ServerClosed",
    "InferenceSession",
    "InferenceServer",
    "ServerStats",
    "percentile",
]
