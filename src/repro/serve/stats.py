"""Serving metrics: latency percentiles, occupancy, shedding, cache hits.

The counters mirror what a production model server exports (queue depth,
batch occupancy, p50/p95/p99, shed/rejected counts) plus the repo's own
signature metric — plan-cache hit rate, which proves warmup really did
pre-compile every bucket plan the traffic needed. Formatting reuses the
``experiments.common.format_table`` report style and the profiler's
sparkline so serving reports look like every other artifact this repo
prints.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServerStats", "percentile"]


def percentile(values: list[float], p: float) -> float | None:
    """Nearest-rank percentile (p in [0, 100]).

    Degenerate windows are honest instead of fabricated: an empty window
    has *no* percentile and returns ``None`` (0.0 used to masquerade as
    a real zero-millisecond latency); a single-sample window returns
    that exact sample for every p.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class _CacheMark:
    hits: int = 0
    misses: int = 0


class ServerStats:
    """Thread-safe accumulator for one server's lifetime metrics.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is attached
    (``metrics=``), every recording call mirrors into it live — the
    ``serve.*`` counters/histograms — so one registry snapshot covers
    serving alongside training and the plan cache.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.rejected_full = 0
        self.rejected_invalid = 0
        self.batches = 0
        self.batch_sizes: list[int] = []
        self.latencies_ms: list[float] = []
        self.queue_depth_peak = 0
        self.depth_samples: list[int] = []
        self._cache_mark = _CacheMark()

    # -- recording (called by the server/queue) -----------------------------

    def on_submit(self, depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth_peak = max(self.queue_depth_peak, depth)
            self.depth_samples.append(depth)
        if self.metrics is not None:
            self.metrics.counter("serve.submitted").inc()
            self.metrics.gauge("serve.queue_depth").set(depth)

    def on_reject_full(self) -> None:
        with self._lock:
            self.rejected_full += 1
        if self.metrics is not None:
            self.metrics.counter("serve.rejected_full").inc()

    def on_reject_invalid(self) -> None:
        with self._lock:
            self.rejected_invalid += 1
        if self.metrics is not None:
            self.metrics.counter("serve.rejected_invalid").inc()

    def on_shed(self, count: int = 1) -> None:
        with self._lock:
            self.shed += count
        if self.metrics is not None:
            self.metrics.counter("serve.shed").inc(count)

    def on_batch(self, occupancy: int, latencies_ms: list[float]) -> None:
        with self._lock:
            self.batches += 1
            self.batch_sizes.append(occupancy)
            self.latencies_ms.extend(latencies_ms)
            self.completed += occupancy
        if self.metrics is not None:
            self.metrics.counter("serve.batches").inc()
            self.metrics.counter("serve.completed").inc(occupancy)
            self.metrics.histogram("serve.batch_occupancy").observe(occupancy)
            latency = self.metrics.histogram("serve.latency_ms")
            for ms in latencies_ms:
                latency.observe(ms)

    def on_failure(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count
        if self.metrics is not None:
            self.metrics.counter("serve.failed").inc(count)

    def mark_cache(self, plan_cache) -> None:
        """Snapshot plan-cache counters (call after warmup); the hit rate
        reported from here on covers post-warmup traffic only."""
        hits, misses = plan_cache.counters()
        with self._lock:
            self._cache_mark = _CacheMark(hits=hits, misses=misses)

    # -- derived metrics ----------------------------------------------------

    def latency_ms(self, p: float) -> float | None:
        with self._lock:
            return percentile(self.latencies_ms, p)

    def mean_occupancy(self) -> float:
        with self._lock:
            if not self.batch_sizes:
                return 0.0
            return sum(self.batch_sizes) / len(self.batch_sizes)

    def cache_hit_rate(self, plan_cache) -> float:
        """Plan-cache hit rate since :meth:`mark_cache` (1.0 when no
        post-mark lookups happened at all — nothing was compiled)."""
        hits, misses = plan_cache.counters()
        with self._lock:
            dh = hits - self._cache_mark.hits
            dm = misses - self._cache_mark.misses
        if dh + dm == 0:
            return 1.0
        return dh / (dh + dm)

    def cache_misses_since_mark(self, plan_cache) -> int:
        _, misses = plan_cache.counters()
        with self._lock:
            return misses - self._cache_mark.misses

    def snapshot(self, plan_cache=None) -> dict:
        """One machine-readable dict of everything (for BENCH_serve.json)."""
        with self._lock:
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "rejected_full": self.rejected_full,
                "rejected_invalid": self.rejected_invalid,
                "batches": self.batches,
                "mean_batch_occupancy": (
                    sum(self.batch_sizes) / len(self.batch_sizes)
                    if self.batch_sizes else 0.0
                ),
                "queue_depth_peak": self.queue_depth_peak,
                "latency_ms_p50": percentile(self.latencies_ms, 50),
                "latency_ms_p95": percentile(self.latencies_ms, 95),
                "latency_ms_p99": percentile(self.latencies_ms, 99),
            }
        if plan_cache is not None:
            out["plan_cache_hit_rate"] = self.cache_hit_rate(plan_cache)
            out["plan_cache_misses_post_warmup"] = (
                self.cache_misses_since_mark(plan_cache)
            )
        return out

    def format_report(self, plan_cache=None) -> str:
        """Human-readable serving report (experiments table style)."""
        from repro.experiments.common import format_table
        from repro.profiler import sparkline

        snap = self.snapshot(plan_cache)
        rows = [
            (
                k,
                "-" if v is None
                else f"{v:.3f}" if isinstance(v, float)
                else str(v),
            )
            for k, v in snap.items()
        ]
        with self._lock:
            depths = list(self.depth_samples)
        if depths:
            rows.append(("queue depth over time", sparkline(depths)))
        return format_table(["metric", "value"], rows, "serving report")
