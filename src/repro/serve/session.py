"""Forward-only inference sessions over the compiled executor.

An :class:`InferenceSession` owns everything needed to run one trained
NMT model for serving: the parameter arrays, a length-bucket table, and —
per bucket — a greedy (or beam) decoder whose encoder/decoder-step graphs
are compiled through the shared, thread-safe :class:`PlanCache` into one
shared :class:`Arena`. Bucket decoders are themselves memoized *in the
plan cache* (keyed like any other planning artifact), so the serving
layer's "compile one plan per bucket" warmup is literally cache
population, and the post-warmup plan-cache hit rate is the metric that
proves first-request latency no longer includes compilation.

Determinism contract (load-bearing for micro-batching): every inference
kernel is batch-row independent, so request ``r`` decoded in *any* batch
of the session's compiled shape — alone, padded, or alongside other
requests — produces bitwise-identical output. :meth:`run_sequential`
replays requests one per batch through the very same plans and is the
reference the tests and the throughput benchmark compare against.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.data.bucketing import BucketSpec, bucket_for, pad_to_bucket
from repro.models.nmt import NmtConfig
from repro.nn import ParamStore
from repro.runtime import Arena, PlanCache
from repro.serve.request import Request, RequestKind
from repro.train.beam import BeamSearchDecoder
from repro.train.decode import GreedyDecoder

__all__ = ["InferenceSession"]


class InferenceSession:
    """Bucketed, forward-only execution of one trained model.

    ``max_batch_size`` fixes the compiled batch shape ``B`` for every
    bucket: partially full micro-batches pad up to ``B`` (filler rows
    repeat row 0) so each bucket needs exactly one encoder plan and one
    decoder-step plan regardless of occupancy.

    The session itself is not thread-safe — plans share one arena, so
    batches must run one at a time. :class:`repro.serve.InferenceServer`
    serializes all execution on its dispatcher thread; concurrency lives
    in admission, not execution (exactly how one GPU would be driven).
    """

    def __init__(
        self,
        config: NmtConfig,
        store: ParamStore,
        params: dict[str, np.ndarray],
        buckets: tuple[BucketSpec, ...],
        max_batch_size: int = 8,
        decoder: str = "greedy",
        beam_size: int = 4,
        plan_cache: PlanCache | None = None,
        arena: Arena | None = None,
        threads: int | None = None,
        pad_token: int = 0,
        bos: int = 1,
        eos: int = 2,
    ) -> None:
        if decoder not in ("greedy", "beam"):
            raise ValueError(f"unknown decoder kind {decoder!r}")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        for bucket in buckets:
            if bucket.src_len > config.src_len:
                raise ValueError(
                    f"bucket {bucket} exceeds model src_len {config.src_len}"
                )
        self.config = config
        self.store = store
        self.params = params
        self.buckets = tuple(buckets)
        self.max_batch_size = max_batch_size
        self.decoder_kind = decoder
        self.beam_size = beam_size
        # Serving compiles ~4 artifacts per (bucket x graph); size the
        # default cache so a full bucket table never self-evicts.
        self.plan_cache = plan_cache or PlanCache(capacity=256)
        self.arena = arena if arena is not None else Arena()
        self.threads = threads
        self.pad_token = pad_token
        self.bos = bos
        self.eos = eos

    # -- plan management ----------------------------------------------------

    def bucket_for_length(self, length: int) -> BucketSpec:
        """Smallest serving bucket fitting ``length`` (raises if none)."""
        return bucket_for(length, self.buckets)

    def _bucket_config(self, bucket: BucketSpec) -> NmtConfig:
        return replace(
            self.config,
            src_len=bucket.src_len,
            tgt_len=bucket.tgt_len,
            batch_size=self.max_batch_size,
            dropout=0.0,  # forward-only: no train-time stochasticity
        )

    def decoder_for(self, bucket: BucketSpec):
        """The compiled decoder for ``bucket`` (memoized in the plan
        cache, so a cold bucket costs one compile and a warm one costs a
        cache hit — the counter the serving stats report)."""
        key = ("serve-decoder", self.decoder_kind, bucket,
               self.max_batch_size, self.beam_size, id(self.store))

        def build():
            cfg = self._bucket_config(bucket)
            if self.decoder_kind == "beam":
                return BeamSearchDecoder(
                    cfg, self.store, beam_size=self.beam_size,
                    bos=self.bos, eos=self.eos, arena=self.arena,
                    plan_cache=self.plan_cache, threads=self.threads,
                )
            return GreedyDecoder(
                cfg, self.store, bos=self.bos, eos=self.eos,
                arena=self.arena, plan_cache=self.plan_cache,
                threads=self.threads,
            )

        return self.plan_cache.memo(key, build)

    def warmup(self) -> dict:
        """Pre-compile every bucket's plans; returns a small report.

        After warmup, no serving request can pay plan compilation: every
        ``decoder_for`` call is a plan-cache hit, which bounds
        first-request latency by kernel time alone.
        """
        from repro.analysis.verify import verification_enabled

        start = time.perf_counter()
        hits0, misses0 = self.plan_cache.counters()
        for bucket in self.buckets:
            self.decoder_for(bucket)
        hits1, misses1 = self.plan_cache.counters()
        report = {
            "buckets": len(self.buckets),
            "plans_compiled": misses1 - misses0,
            "cache_hits": hits1 - hits0,
            "seconds": time.perf_counter() - start,
            # plans compile through the shared PlanCache, whose builder
            # runs the static analyzers when REPRO_VERIFY is on — so a
            # warmup under the guard *is* a verification pass over every
            # serving plan, before the first request executes
            "verified": verification_enabled(),
        }
        # With a persistent tuning store attached (REPRO_TUNE_DIR), warmup
        # is the ahead-of-time load point: misses above still counted as
        # "compiled", but their schedules, wavefront layouts, and closure
        # bytecode came from disk — the store counters say how much.
        store = getattr(self.plan_cache, "store", None)
        if store is not None:
            report["tune_store"] = store.stats()
        return report

    def verify(self, threads_probe: int = 4, equiv: bool = False):
        """Statically verify every bucket decoder's compiled plans.

        Compiles any cold bucket (same path as :meth:`warmup`), runs the
        :mod:`repro.analysis` analyzers over each bucket's encoder and
        decoder-step plans (``equiv=True`` adds equivalence
        certification), and returns one merged
        :class:`~repro.analysis.findings.AnalysisReport`. Explicit
        (unconditional) counterpart of the ``REPRO_VERIFY`` warmup guard.
        """
        from repro.analysis.findings import AnalysisReport

        report = AnalysisReport()
        for bucket in self.buckets:
            decoder = self.decoder_for(bucket)
            for executor in (decoder._encoder, decoder._step):
                report.extend(
                    executor.verify(
                        threads_probe=threads_probe, equiv=equiv
                    ).findings
                )
        return report

    # -- batch execution ----------------------------------------------------

    def run_batch(self, kind: RequestKind, bucket: BucketSpec,
                  requests: Sequence[Request]) -> list:
        """Execute one coalesced micro-batch; returns per-request results.

        TRANSLATE results are EOS-trimmed token lists (capped to each
        request's ``max_len``); SCORE results are floats.
        """
        if not requests:
            return []
        if len(requests) > self.max_batch_size:
            raise ValueError(
                f"batch of {len(requests)} exceeds max {self.max_batch_size}"
            )
        src = pad_to_bucket(
            [list(r.tokens) for r in requests], bucket,
            self.max_batch_size, self.pad_token,
        )
        decoder = self.decoder_for(bucket)
        if kind is RequestKind.TRANSLATE:
            outputs = decoder.translate(src, self.params)
            results = []
            for i, req in enumerate(requests):
                limit = req.max_len if req.max_len is not None \
                    else bucket.tgt_len
                results.append(outputs[i][:limit])
            return results
        if kind is RequestKind.SCORE:
            if self.decoder_kind != "greedy":
                raise ValueError("SCORE requests require the greedy decoder")
            targets = [list(r.targets) for r in requests]
            targets += [targets[0]] * (self.max_batch_size - len(targets))
            totals = decoder.score(src, targets, self.params)
            return [float(totals[i]) for i in range(len(requests))]
        raise ValueError(f"unknown request kind {kind!r}")

    def run_sequential(self, requests: Sequence[Request]) -> list:
        """Reference path: each request alone in its own batch.

        Same buckets, same compiled plans, occupancy 1 — the output any
        request would get with no batching at all. Micro-batched serving
        must match this bitwise (asserted in tests/test_serve.py and the
        throughput benchmark).
        """
        results = []
        for req in requests:
            bucket = req.bucket or self.bucket_for_length(len(req.tokens))
            results.append(self.run_batch(req.kind, bucket, [req])[0])
        return results
