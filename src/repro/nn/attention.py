"""Attention layers for the NMT decoder.

``MlpAttention`` is the Sockeye-style scoring function the paper singles
out (Section 5.2): a composite of **broadcast add + layer normalization +
tanh** applied between each decoder query and every encoder position. Its
computation is the canonical O-shape operator:

* inputs per decoder step: the projected query ``[B x H]`` (the encoder-side
  key projection ``[B x T x H]`` is computed once and shared by all steps);
* outputs per step: attention scores ``[B x T]``;
* interior per step: several ``[B x T x H]`` tensors, which summed over the
  T decoder steps cost O(B x T^2 x H) bytes of feature maps.

Echo discovers this region automatically — the scoring function is built
from recompute-cheap ops bounded by GEMM checkpoints on both sides.

``DotAttention`` (Luong-style) is included for completeness; it has no
O-shape interior, which is a useful negative control for the pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.ops as O
from repro.graph import Tensor, scope
from repro.layout import Layout
from repro.nn.module import ParamStore


@dataclass
class AttentionState:
    """Precomputed encoder-side quantities shared across decoder steps."""

    values: Tensor  # [B x T x H] encoder states (attention values)
    keys_proj: Tensor  # [B x T x H] projected keys (MLP attention only)


class MlpAttention:
    """Bahdanau/Sockeye MLP attention with layer normalization.

    ``manual_recompute=True`` wraps the O-shape interior in
    :func:`repro.echo.manual.recompute_region` — the precursor system's
    hand-annotated partial forward propagation, used by the parity
    experiment against the automatic pass.
    """

    def __init__(
        self,
        store: ParamStore,
        prefix: str,
        hidden_size: int,
        layout: Layout = Layout.ROW_MAJOR,
        manual_recompute: bool = False,
    ) -> None:
        self.hidden_size = hidden_size
        self.layout = layout
        self.manual_recompute = manual_recompute
        self.w_query = store.get(f"{prefix}.w_query", (hidden_size, hidden_size))
        self.w_keys = store.get(f"{prefix}.w_keys", (hidden_size, hidden_size))
        self.ln_gamma = store.get(f"{prefix}.ln_gamma", (hidden_size,), init="ones")
        self.ln_beta = store.get(f"{prefix}.ln_beta", (hidden_size,), init="zeros")
        self.v_score = store.get(f"{prefix}.v_score", (1, hidden_size))

    def precompute(self, encoder_states: Tensor) -> AttentionState:
        """Project the encoder states once ([B x T x H] keys)."""
        batch, seq_len, hidden = encoder_states.shape
        with scope("attention"):
            flat = O.reshape(encoder_states, (batch * seq_len, hidden))
            proj = O.fully_connected(flat, self.w_keys, layout=self.layout)
            keys = O.reshape(proj, (batch, seq_len, hidden))
        return AttentionState(values=encoder_states, keys_proj=keys)

    def __call__(self, query: Tensor, state: AttentionState) -> Tensor:
        """One decoder step: query [B x H] -> context [B x H]."""
        batch, seq_len, hidden = state.keys_proj.shape
        with scope("attention"):
            q_proj = O.fully_connected(query, self.w_query, layout=self.layout)
            activated = self._scoring_interior(q_proj, state, batch,
                                               seq_len, hidden)
            scores_flat = O.fully_connected(
                activated, self.v_score, layout=self.layout
            )
            scores = O.reshape(scores_flat, (batch, 1, seq_len))
            weights = O.softmax(scores, axis=-1)
            context = O.batch_dot(weights, state.values)  # [B x 1 x H]
            return O.reshape(context, (batch, hidden))

    def _scoring_interior(self, q_proj, state, batch, seq_len, hidden):
        """The O-shape interior: broadcast add + layer norm + tanh,
        producing [B x T x H]-sized values per decoder step."""
        def build():
            combined = O.add(O.expand_dims(q_proj, 1), state.keys_proj)
            flat = O.reshape(combined, (batch * seq_len, hidden))
            normed = O.layer_norm(flat, self.ln_gamma, self.ln_beta)
            return O.tanh(normed)

        if self.manual_recompute:
            from repro.echo.manual import recompute_region

            with recompute_region():
                return build()
        return build()


class DotAttention:
    """Luong dot-product attention: scores = Q . K^T (no O-shape interior)."""

    def __init__(self, store: ParamStore, prefix: str, hidden_size: int,
                 layout: Layout = Layout.ROW_MAJOR) -> None:
        self.hidden_size = hidden_size
        self.layout = layout
        self.w_query = store.get(f"{prefix}.w_query", (hidden_size, hidden_size))

    def precompute(self, encoder_states: Tensor) -> AttentionState:
        return AttentionState(values=encoder_states, keys_proj=encoder_states)

    def __call__(self, query: Tensor, state: AttentionState) -> Tensor:
        batch, _seq_len, hidden = state.values.shape
        with scope("attention"):
            q_proj = O.fully_connected(query, self.w_query, layout=self.layout)
            q3 = O.expand_dims(q_proj, 1)  # [B x 1 x H]
            scores = O.batch_dot(q3, state.values, tb=True)  # [B x 1 x T]
            weights = O.softmax(scores, axis=-1)
            context = O.batch_dot(weights, state.values)
            return O.reshape(context, (batch, hidden))
