"""Parameter management for model construction.

A :class:`ParamStore` hands out ``variable`` tensors under unique names and
remembers how to initialize them, so models are pure graph-building
functions and the training loop owns the numpy parameter arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

import repro.ops as O
from repro.graph import Tensor


@dataclass(frozen=True)
class ParamSpec:
    name: str
    shape: tuple[int, ...]
    init: str  # "xavier" | "zeros" | "ones" | "uniform"


class ParamStore:
    """Creates and tracks trainable variables; materializes initial values."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._specs: dict[str, ParamSpec] = {}
        self._tensors: dict[str, Tensor] = {}

    def get(
        self, name: str, shape: tuple[int, ...], init: str = "xavier"
    ) -> Tensor:
        """Variable tensor for ``name``; same name must keep same shape."""
        if name in self._specs:
            spec = self._specs[name]
            if spec.shape != tuple(shape):
                raise ValueError(
                    f"parameter {name!r} requested with shape {shape}, "
                    f"previously {spec.shape}"
                )
            return self._tensors[name]
        spec = ParamSpec(name, tuple(shape), init)
        self._specs[name] = spec
        tensor = O.variable(shape, name=name)
        self._tensors[name] = tensor
        return tensor

    @property
    def tensors(self) -> dict[str, Tensor]:
        return dict(self._tensors)

    def num_parameters(self) -> int:
        return sum(
            int(np.prod(s.shape)) if s.shape else 1
            for s in self._specs.values()
        )

    def initialize(self, seed: int | None = None) -> dict[str, np.ndarray]:
        """Materialize initial values for every declared parameter."""
        rng = np.random.default_rng(self._seed if seed is None else seed)
        values: dict[str, np.ndarray] = {}
        for spec in self._specs.values():
            values[spec.name] = _init_array(spec, rng)
        return values


def _init_array(spec: ParamSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.init == "zeros":
        return np.zeros(spec.shape, dtype=np.float32)
    if spec.init == "ones":
        return np.ones(spec.shape, dtype=np.float32)
    if spec.init == "uniform":
        return rng.uniform(-0.1, 0.1, spec.shape).astype(np.float32)
    if spec.init == "xavier":
        if len(spec.shape) >= 2:
            fan_out, fan_in = spec.shape[0], int(np.prod(spec.shape[1:]))
        else:
            fan_in = fan_out = max(spec.shape[0], 1)
        bound = math.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-bound, bound, spec.shape).astype(np.float32)
    raise ValueError(f"unknown initializer {spec.init!r} for {spec.name!r}")
