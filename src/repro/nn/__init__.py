"""Neural-network layer zoo (DESIGN.md S9)."""

from repro.nn.attention import AttentionState, DotAttention, MlpAttention
from repro.nn.layers import OutputLayer, WordEmbedding
from repro.nn.module import ParamSpec, ParamStore
from repro.nn.rnn import (
    Backend,
    GruCell,
    LstmCell,
    LstmStates,
    bidirectional_lstm,
    gru_layer,
    lstm_layer,
    multilayer_lstm,
)

__all__ = [
    "ParamStore",
    "ParamSpec",
    "Backend",
    "LstmCell",
    "LstmStates",
    "lstm_layer",
    "multilayer_lstm",
    "bidirectional_lstm",
    "GruCell",
    "gru_layer",
    "MlpAttention",
    "DotAttention",
    "AttentionState",
    "WordEmbedding",
    "OutputLayer",
]
