"""LSTM / GRU recurrent layers with the paper's three backends.

* ``Backend.DEFAULT`` — the MXNet-style unfused cell: the "f" block is a
  dozen separate slice / sigmoid / tanh / elementwise kernels per timestep,
  so iterations drown in cudaLaunch overhead (paper Figure 7a).
* ``Backend.CUDNN`` — cuDNN-style: the input-side GEMM of a layer is batched
  over all timesteps into one large GEMM, and the pointwise block is a
  single fused kernel per step (Appleyard et al.). Row-major GEMM layout.
* ``Backend.ECHO`` — the fused structure plus the paper's data layout
  optimization: every gate GEMM carries ``Layout.COL_MAJOR``
  (``Y^T = W . X^T``), which the GPU model rewards with the Figure 9 cache
  behavior. Numerics are identical across all backends.

Sequence tensors are time-major ``[T x B x H]`` throughout, matching the
paper's observation that inputs must become time-major to be sliced along
the time dimension anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import repro.ops as O
from repro.graph import Tensor, scope
from repro.layout import Layout
from repro.nn.module import ParamStore
from repro.ops.dropout import stable_seed


class Backend(Enum):
    """Which LSTM implementation the framework dispatches to."""

    DEFAULT = "default"
    CUDNN = "cudnn"
    ECHO = "echo"

    @property
    def fused(self) -> bool:
        return self is not Backend.DEFAULT

    @property
    def layout(self) -> Layout:
        return Layout.COL_MAJOR if self is Backend.ECHO else Layout.ROW_MAJOR


@dataclass
class LstmStates:
    """Per-layer hidden and cell states."""

    h: Tensor
    c: Tensor


class LstmCell:
    """One LSTM layer applied a step at a time (used by decoders).

    ``peephole=True`` adds Gers & Schmidhuber peephole connections (the
    cell state feeds the input/forget/output gates). cuDNN's fused path
    does not support peepholes — the paper cites exactly this as why
    practitioners need framework-side cells — so the peephole block always
    runs unfused; the data layout optimization on the GEMMs still applies,
    which is the paper's Section 4.2 generality argument.
    """

    def __init__(
        self,
        store: ParamStore,
        prefix: str,
        input_size: int,
        hidden_size: int,
        backend: Backend = Backend.DEFAULT,
        peephole: bool = False,
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.backend = backend
        self.peephole = peephole
        self.w_x = store.get(f"{prefix}.w_x", (4 * hidden_size, input_size))
        self.w_h = store.get(f"{prefix}.w_h", (4 * hidden_size, hidden_size))
        self.bias = store.get(f"{prefix}.bias", (4 * hidden_size,), init="zeros")
        if peephole:
            self.p_i = store.get(f"{prefix}.p_i", (hidden_size,))
            self.p_f = store.get(f"{prefix}.p_f", (hidden_size,))
            self.p_o = store.get(f"{prefix}.p_o", (hidden_size,))

    def gates_from_input(self, x_t: Tensor) -> Tensor:
        """Input-side contribution to the pre-activations (one step)."""
        return O.fully_connected(x_t, self.w_x, self.bias,
                                 layout=self.backend.layout)

    def step_from_gates(self, x_gates: Tensor, state: LstmStates) -> LstmStates:
        """Advance one step given precomputed input-side gates."""
        gates = O.add(
            x_gates,
            O.fully_connected(state.h, self.w_h, layout=self.backend.layout),
        )
        if self.peephole:
            h, c = _peephole_lstm_block(
                gates, state.c, self.hidden_size, self.p_i, self.p_f, self.p_o
            )
        elif self.backend.fused:
            h, c = O.lstm_gates(gates, state.c)
        else:
            h, c = _unfused_lstm_block(gates, state.c, self.hidden_size)
        return LstmStates(h=h, c=c)

    def step(self, x_t: Tensor, state: LstmStates) -> LstmStates:
        """One timestep: ``x_t`` is [B x input_size]."""
        return self.step_from_gates(self.gates_from_input(x_t), state)

    def zero_state(self, batch: int) -> LstmStates:
        return LstmStates(
            h=O.zeros((batch, self.hidden_size)),
            c=O.zeros((batch, self.hidden_size)),
        )


def unstack_time(sequence: Tensor) -> list[Tensor]:
    """Split a [T x B x H] tensor into T step tensors of [B x H].

    Uses an axis-0 split (views into the contiguous buffer, as frameworks
    do) rather than per-step slice_axis: the gradient is then a single
    concat instead of T full-size scatter tensors.
    """
    seq_len = sequence.shape[0]
    rest = sequence.shape[1:]
    pieces = O.split(sequence, seq_len, axis=0) if seq_len > 1 else (sequence,)
    return [O.reshape(p, rest) for p in pieces]


def _peephole_lstm_block(
    gates: Tensor,
    c_prev: Tensor,
    hidden: int,
    p_i: Tensor,
    p_f: Tensor,
    p_o: Tensor,
) -> tuple[Tensor, Tensor]:
    """Gers & Schmidhuber peephole LSTM: gate pre-activations peek at the
    cell state (input/forget see c_{t-1}; output sees c_t)."""
    i_pre = O.slice_axis(gates, 1, 0 * hidden, 1 * hidden)
    f_pre = O.slice_axis(gates, 1, 1 * hidden, 2 * hidden)
    g_pre = O.slice_axis(gates, 1, 2 * hidden, 3 * hidden)
    o_pre = O.slice_axis(gates, 1, 3 * hidden, 4 * hidden)
    i = O.sigmoid(O.add(i_pre, O.mul(p_i, c_prev)))
    f = O.sigmoid(O.add(f_pre, O.mul(p_f, c_prev)))
    g = O.tanh(g_pre)
    c = O.add(O.mul(f, c_prev), O.mul(i, g))
    o = O.sigmoid(O.add(o_pre, O.mul(p_o, c)))
    h = O.mul(o, O.tanh(c))
    return h, c


def _unfused_lstm_block(gates: Tensor, c_prev: Tensor, hidden: int
                        ) -> tuple[Tensor, Tensor]:
    """The Default backend's "f" block: many small kernels, as in MXNet."""
    i_pre = O.slice_axis(gates, 1, 0 * hidden, 1 * hidden)
    f_pre = O.slice_axis(gates, 1, 1 * hidden, 2 * hidden)
    g_pre = O.slice_axis(gates, 1, 2 * hidden, 3 * hidden)
    o_pre = O.slice_axis(gates, 1, 3 * hidden, 4 * hidden)
    i = O.sigmoid(i_pre)
    f = O.sigmoid(f_pre)
    g = O.tanh(g_pre)
    o = O.sigmoid(o_pre)
    c = O.add(O.mul(f, c_prev), O.mul(i, g))
    h = O.mul(o, O.tanh(c))
    return h, c


def lstm_layer(
    store: ParamStore,
    prefix: str,
    sequence: Tensor,
    hidden_size: int,
    backend: Backend = Backend.DEFAULT,
    init_state: LstmStates | None = None,
    peephole: bool = False,
) -> tuple[Tensor, LstmStates]:
    """Run one LSTM layer over a [T x B x I] sequence.

    Returns the [T x B x H] stacked hidden states and the final states.
    The CUDNN/ECHO backends hoist the input-side GEMM out of the time loop
    (one [T*B x I] GEMM), the key structural optimization of cuDNN's RNN
    path; DEFAULT issues it per step like framework cells do.
    """
    seq_len, batch, input_size = sequence.shape
    cell = LstmCell(store, prefix, input_size, hidden_size, backend,
                    peephole=peephole)
    state = init_state or cell.zero_state(batch)

    if backend.fused:
        flat = O.reshape(sequence, (seq_len * batch, input_size))
        all_gates = O.fully_connected(flat, cell.w_x, cell.bias,
                                      layout=backend.layout)
        stacked = O.reshape(all_gates, (seq_len, batch, 4 * hidden_size))
        x_gates_per_step = unstack_time(stacked)
    else:
        x_gates_per_step = [
            cell.gates_from_input(x_t) for x_t in unstack_time(sequence)
        ]

    outputs: list[Tensor] = []
    for t in range(seq_len):
        state = cell.step_from_gates(x_gates_per_step[t], state)
        outputs.append(O.expand_dims(state.h, 0))
    stacked_h = O.concat(outputs, axis=0)
    return stacked_h, state


def multilayer_lstm(
    store: ParamStore,
    prefix: str,
    sequence: Tensor,
    hidden_size: int,
    num_layers: int,
    backend: Backend = Backend.DEFAULT,
    dropout: float = 0.0,
) -> tuple[Tensor, list[LstmStates]]:
    """Stack ``num_layers`` LSTM layers with inter-layer dropout."""
    states: list[LstmStates] = []
    current = sequence
    for layer in range(num_layers):
        current, final = lstm_layer(
            store, f"{prefix}.l{layer}", current, hidden_size, backend
        )
        states.append(final)
        if dropout > 0.0 and layer < num_layers - 1:
            # stable_seed, not hash(): hash() is salted per process, which
            # would give every process different masks and training curves.
            current = O.dropout(
                current, dropout, seed=stable_seed(prefix, layer)
            )
    return current, states


def bidirectional_lstm(
    store: ParamStore,
    prefix: str,
    sequence: Tensor,
    hidden_size: int,
    backend: Backend = Backend.DEFAULT,
    parallel_reverse: bool = True,
) -> Tensor:
    """Bi-directional layer: forward and time-reversed passes, concatenated.

    ``parallel_reverse=False`` models MXNet's sequential SequenceReverse
    (the Figure 6 runtime pathology); the paper's fix sets it True.
    """
    if hidden_size % 2 != 0:
        raise ValueError("bidirectional LSTM needs an even hidden size")
    half = hidden_size // 2
    fwd, _ = lstm_layer(store, f"{prefix}.fwd", sequence, half, backend)
    reversed_in = O.sequence_reverse(sequence, parallel=parallel_reverse)
    bwd_rev, _ = lstm_layer(store, f"{prefix}.bwd", reversed_in, half, backend)
    bwd = O.sequence_reverse(bwd_rev, parallel=parallel_reverse)
    return O.concat([fwd, bwd], axis=2)


class GruCell:
    """GRU cell (3 gates) — used by the layout study (Figure 9b) and as an
    extension showing the optimizations generalize beyond vanilla LSTM."""

    def __init__(
        self,
        store: ParamStore,
        prefix: str,
        input_size: int,
        hidden_size: int,
        backend: Backend = Backend.DEFAULT,
    ) -> None:
        self.hidden_size = hidden_size
        self.backend = backend
        self.w_x = store.get(f"{prefix}.w_x", (3 * hidden_size, input_size))
        self.w_h = store.get(f"{prefix}.w_h", (3 * hidden_size, hidden_size))
        self.bias = store.get(f"{prefix}.bias", (3 * hidden_size,), init="zeros")

    def step(self, x_t: Tensor, h_prev: Tensor) -> Tensor:
        hidden = self.hidden_size
        layout = self.backend.layout
        x_part = O.fully_connected(x_t, self.w_x, self.bias, layout=layout)
        h_part = O.fully_connected(h_prev, self.w_h, layout=layout)
        xr = O.slice_axis(x_part, 1, 0, hidden)
        xz = O.slice_axis(x_part, 1, hidden, 2 * hidden)
        xn = O.slice_axis(x_part, 1, 2 * hidden, 3 * hidden)
        hr = O.slice_axis(h_part, 1, 0, hidden)
        hz = O.slice_axis(h_part, 1, hidden, 2 * hidden)
        hn = O.slice_axis(h_part, 1, 2 * hidden, 3 * hidden)
        r = O.sigmoid(O.add(xr, hr))
        z = O.sigmoid(O.add(xz, hz))
        n = O.tanh(O.add(xn, O.mul(r, hn)))
        one_minus_z = O.rsub_scalar(z, 1.0)
        return O.add(O.mul(one_minus_z, n), O.mul(z, h_prev))

    def zero_state(self, batch: int) -> Tensor:
        return O.zeros((batch, self.hidden_size))


def gru_layer(
    store: ParamStore,
    prefix: str,
    sequence: Tensor,
    hidden_size: int,
    backend: Backend = Backend.DEFAULT,
) -> Tensor:
    """Run a GRU layer over a [T x B x I] sequence; returns [T x B x H]."""
    seq_len, batch, input_size = sequence.shape
    cell = GruCell(store, prefix, input_size, hidden_size, backend)
    h = cell.zero_state(batch)
    outputs = []
    for x_t in unstack_time(sequence):
        h = cell.step(x_t, h)
        outputs.append(O.expand_dims(h, 0))
    return O.concat(outputs, axis=0)


def rnn_scope():
    """Profiler scope for RNN layers (breakdown figures group on it)."""
    return scope("rnn")
