"""Non-recurrent layers: embeddings and the vocabulary output head."""

from __future__ import annotations

import repro.ops as O
from repro.graph import Tensor, scope
from repro.layout import Layout
from repro.nn.module import ParamStore


class WordEmbedding:
    """Token-id [T x B] -> hidden vectors [T x B x E]."""

    def __init__(
        self, store: ParamStore, prefix: str, vocab_size: int, embed_size: int
    ) -> None:
        self.vocab_size = vocab_size
        self.embed_size = embed_size
        self.weight = store.get(
            f"{prefix}.weight", (vocab_size, embed_size), init="uniform"
        )

    def __call__(self, token_ids: Tensor) -> Tensor:
        with scope("embedding"):
            return O.embedding(self.weight, token_ids)


class OutputLayer:
    """Hidden states -> vocabulary logits -> mean cross-entropy loss.

    The projection is the single largest GEMM of both workloads
    ([T*B x H] x [V x H]); perplexity is exp(loss).
    """

    def __init__(
        self,
        store: ParamStore,
        prefix: str,
        hidden_size: int,
        vocab_size: int,
        layout: Layout = Layout.ROW_MAJOR,
    ) -> None:
        self.hidden_size = hidden_size
        self.vocab_size = vocab_size
        self.layout = layout
        self.weight = store.get(f"{prefix}.weight", (vocab_size, hidden_size))
        self.bias = store.get(f"{prefix}.bias", (vocab_size,), init="zeros")

    def logits(self, hidden: Tensor) -> Tensor:
        """``hidden`` is [T x B x H]; returns [T*B x V]."""
        seq_len, batch, h = hidden.shape
        with scope("output"):
            flat = O.reshape(hidden, (seq_len * batch, h))
            return O.fully_connected(flat, self.weight, self.bias,
                                     layout=self.layout)

    def loss(self, hidden: Tensor, labels: Tensor,
             ignore_label: int = -1) -> Tensor:
        """``labels`` is [T x B] int; padding uses ``ignore_label``."""
        seq_len, batch = labels.shape
        with scope("output"):
            flat_labels = O.reshape(labels, (seq_len * batch,))
            return O.softmax_cross_entropy(
                self.logits(hidden), flat_labels, ignore_label=ignore_label
            )
